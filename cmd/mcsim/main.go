// Command mcsim runs the discrete-event simulator of the heterogeneous
// multi-cluster system at one operating point and reports the measured
// latency statistics, following the paper's §4 methodology.
//
// Usage:
//
//	mcsim -org org1 -lambda 2e-4
//	mcsim -org org2 -m 64 -lm 512 -lambda 1e-4 -reps 5
//	mcsim -org org2 -lambda 3e-4 -pattern local:0.6
//	mcsim -org org2 -lambda 3e-4 -links icn2=0.04/0.02/0.004   # slow backbone
//	mcsim -org "m=4:8x3@ecn1=0.04/0.02/0.004,3x4,5x5" -lambda 3e-4
//	mcsim -org org2 -lambda 3e-4 -arrival mmpp:16:32 -sizes bimodal:8:128:0.2
//	mcsim -org org2 -lambda 3e-4 -record run.jsonl   # record the workload
//	mcsim -replay run.jsonl                          # bit-exact re-run
//	mcsim -org org2 -lambda 4e-4 -telemetry - -telemetry-series tele.csv
package main

import (
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"
	"time"

	"mcnet/internal/mcsim"
	"mcnet/internal/routing"
	"mcnet/internal/stats"
	"mcnet/internal/sweep"
	"mcnet/internal/system"
	"mcnet/internal/traffic"
	"mcnet/internal/units"
	"mcnet/internal/workload"
)

func main() {
	var (
		orgSpec  = flag.String("org", "org1", `organization: org1|org2|"m=<ports>:<count>x<levels>[@rate],..."`)
		topoAxis = flag.String("topo", "", `topology "<cluster>[+<global>]" applied over the org: fattree|jellyfish[.s<seed>], +dragonfly for ICN2`)
		mFlits   = flag.Int("m", 32, "message length M in flits")
		lm       = flag.Int("lm", 256, "flit length L_m in bytes")
		lambda   = flag.Float64("lambda", 1e-4, "offered traffic λ_g (messages/node/time-unit)")
		warmup   = flag.Int("warmup", 10000, "warm-up messages (discarded)")
		measure  = flag.Int("measure", 100000, "measured messages")
		drain    = flag.Int("drain", 10000, "drain messages (generated, not measured)")
		seed     = flag.Uint64("seed", 1, "base RNG seed")
		reps     = flag.Int("reps", 1, "independent replications (seeds seed..seed+reps-1)")
		pattern  = flag.String("pattern", "uniform", "traffic: uniform|hotspot:<frac>|local:<frac>")
		mode     = flag.String("routing", "balanced", "ascent discipline: balanced|random")
		arrival  = flag.String("arrival", "poisson", "arrival process: poisson|deterministic|mmpp:<peak>:<burst>")
		sizes    = flag.String("sizes", "fixed", "message lengths: fixed|bimodal:<short>:<long>:<plong>|geometric:<mean>")
		links    = flag.String("links", "uniform", "per-tier link technology: uniform|<tier>=<an>/<as>/<bn>[+...] over icn1,ecn1,icn2,conc")
		record   = flag.String("record", "", "record the generation stream to this trace file (JSONL)")
		replay   = flag.String("replay", "", "replay a recorded trace instead of generating (ignores workload flags)")
		teleOut  = flag.String("telemetry", "", `write the per-tier contention report (JSON) to this file ("-" = stdout)`)
		teleCSV  = flag.String("telemetry-series", "", "write the telemetry time series (CSV) to this file")
		verbose  = flag.Bool("v", false, "print per-cluster statistics")
	)
	flag.Parse()

	var cfg mcsim.Config
	var org system.Organization
	var err error
	if *replay != "" {
		if *record != "" {
			// A re-recorded trace would carry a header describing the
			// replay config, not the workload the events came from.
			fatalf("-record cannot be combined with -replay (the trace already exists)")
		}
		tr, err := workload.ReadFile(*replay)
		if err != nil {
			fatalf("%v", err)
		}
		if cfg, err = sweep.ReplayConfig(tr); err != nil {
			fatalf("%v", err)
		}
		org = cfg.Org
		*reps = 1
		fmt.Printf("replaying %s: %d events recorded from org %q\n", *replay, len(tr.Events), tr.Header.Org)
	} else {
		org, err = system.ParseOrganization(*orgSpec)
		if err != nil {
			fatalf("%v", err)
		}
		if *topoAxis != "" {
			if err := system.ApplyTopologyAxis(&org, *topoAxis); err != nil {
				fatalf("%v", err)
			}
		}
		par := units.Default().WithMessage(*mFlits, *lm)
		if par.Tiers, err = units.ParseTiers(*links); err != nil {
			fatalf("%v", err)
		}
		cfg = mcsim.Config{
			Org: org, Par: par, LambdaG: *lambda,
			Warmup: *warmup, Measure: *measure, Drain: *drain,
		}
		switch *mode {
		case "balanced":
			cfg.RoutingMode = routing.Balanced
		case "random":
			cfg.RoutingMode = routing.RandomUp
		default:
			fatalf("unknown -routing %q", *mode)
		}
		if cfg.Pattern, err = parsePattern(*pattern); err != nil {
			fatalf("%v", err)
		}
		if cfg.Arrival, err = workload.ParseArrival(*arrival); err != nil {
			fatalf("%v", err)
		}
		if cfg.Sizes, err = workload.ParseSize(*sizes); err != nil {
			fatalf("%v", err)
		}
		fmt.Print(system.MustNew(org).Summary())
		fmt.Printf("  parameters: %s   λ_g=%g   routing=%s   pattern=%s   arrival=%s   sizes=%s\n\n",
			par, *lambda, *mode, *pattern, cfg.Arrival.Name(), cfg.Sizes.Name())
	}

	wantTele := *teleOut != "" || *teleCSV != ""
	if wantTele {
		if *reps > 1 {
			fatalf("-telemetry/-telemetry-series need -reps 1 (one report per run)")
		}
		cfg.Telemetry = &mcsim.TelemetryConfig{}
	}

	var means stats.Running
	for rep := 0; rep < *reps; rep++ {
		if *replay == "" {
			cfg.Seed = *seed + uint64(rep)
		}
		var traceFile *os.File
		var traceWriter *workload.Writer
		if *record != "" {
			if *reps > 1 {
				fatalf("-record needs -reps 1 (a trace holds one run)")
			}
			if traceFile, err = os.Create(*record); err != nil {
				fatalf("%v", err)
			}
			hdr := workload.Header{
				Org: system.Format(org), Flits: cfg.Par.MessageFlits, FlitBytes: cfg.Par.FlitBytes,
				AlphaNet: cfg.Par.AlphaNet, AlphaSw: cfg.Par.AlphaSw, BetaNet: cfg.Par.BetaNet,
				Links:  cfg.Par.Tiers.String(),
				Lambda: cfg.LambdaG, Seed: cfg.Seed,
				Warmup: cfg.Warmup, Measure: cfg.Measure, Drain: cfg.Drain,
			}
			if cfg.Arrival != nil {
				hdr.Arrival = cfg.Arrival.Name()
			}
			if cfg.Sizes != nil {
				hdr.Size = cfg.Sizes.Name()
			}
			if *pattern != "uniform" {
				hdr.Pattern = *pattern
			}
			if cfg.RoutingMode == routing.RandomUp {
				hdr.Routing = "random-up"
			}
			if traceWriter, err = workload.NewWriter(traceFile, hdr); err != nil {
				fatalf("%v", err)
			}
			cfg.Record = func(e workload.Event) {
				if err := traceWriter.Add(e); err != nil {
					fatalf("recording trace: %v", err)
				}
			}
		}
		start := time.Now()
		sim, err := mcsim.New(cfg)
		if err != nil {
			fatalf("%v", err)
		}
		res, err := sim.Run()
		if traceWriter != nil {
			if err := traceWriter.Flush(); err != nil {
				fatalf("flushing trace: %v", err)
			}
			if err := traceFile.Close(); err != nil {
				fatalf("closing trace: %v", err)
			}
			fmt.Printf("recorded %d events to %s\n", traceWriter.Events(), *record)
		}
		if err != nil {
			fmt.Printf("rep %d: %v (partial results follow)\n", rep, err)
		}
		means.Add(res.Latency.Mean)
		fmt.Printf("rep %d (seed %d): mean=%.4f  sd=%.3f  min=%.3f  max=%.3f  n=%d\n",
			rep, cfg.Seed, res.Latency.Mean, math.Sqrt(res.Latency.Variance),
			res.Latency.Min, res.Latency.Max, res.Latency.Count)
		fmt.Printf("  intra: %v\n  inter: %v\n", res.IntraLatency, res.InterLatency)
		fmt.Printf("  observed P_out=%.4f  generated=%d  sim-time=%.1f  events=%d  wall=%v\n",
			res.ObservedPOut, res.Generated, res.SimTime, res.Events,
			time.Since(start).Round(time.Millisecond))
		if *verbose {
			for i, pc := range res.PerCluster {
				fmt.Printf("  cluster %2d: %v\n", i, pc)
			}
		}
		if wantTele {
			trep := sim.Telemetry().Snapshot()
			if *teleOut != "" {
				if err := writeTelemetryJSON(*teleOut, trep); err != nil {
					fatalf("writing -telemetry: %v", err)
				}
				if *teleOut != "-" {
					fmt.Printf("  telemetry report written to %s\n", *teleOut)
				}
			}
			if *teleCSV != "" {
				if err := writeTelemetrySeries(*teleCSV, trep); err != nil {
					fatalf("writing -telemetry-series: %v", err)
				}
				fmt.Printf("  telemetry series (%d samples) written to %s\n", len(trep.Series), *teleCSV)
			}
		}
	}
	if *reps > 1 {
		fmt.Printf("\nacross %d replications: mean latency = %.4f ± %.4f (sd)\n",
			*reps, means.Mean(), means.StdDev())
	}
}

func parsePattern(spec string) (func(*system.System) traffic.Pattern, error) {
	if spec == "uniform" || spec == "" {
		return nil, nil
	}
	name, arg, _ := strings.Cut(spec, ":")
	frac, err := strconv.ParseFloat(arg, 64)
	if err != nil {
		return nil, fmt.Errorf("pattern %q: bad fraction: %v", spec, err)
	}
	switch name {
	case "hotspot":
		return func(s *system.System) traffic.Pattern {
			return traffic.Hotspot{N: s.TotalNodes(), Hot: 0, Fraction: frac}
		}, nil
	case "local":
		return func(s *system.System) traffic.Pattern {
			return traffic.ClusterLocal{Sys: s, PLocal: frac}
		}, nil
	default:
		return nil, fmt.Errorf("unknown pattern %q", name)
	}
}

// writeTelemetryJSON renders the contention report as indented JSON to path
// ("-" = stdout).
func writeTelemetryJSON(path string, rep mcsim.TelemetryReport) error {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if path == "-" {
		_, err := os.Stdout.Write(b)
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// writeTelemetrySeries renders the report's time series as CSV: one row per
// snapshot with the interval per-tier utilizations.
func writeTelemetrySeries(path string, rep mcsim.TelemetryReport) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := csv.NewWriter(f)
	header := []string{"events", "time", "in_flight"}
	for _, name := range mcsim.TierNames() {
		header = append(header, "util_"+name)
	}
	if err := w.Write(header); err != nil {
		f.Close()
		return err
	}
	for _, p := range rep.Series {
		row := []string{
			strconv.FormatUint(p.Events, 10),
			strconv.FormatFloat(p.Time, 'g', -1, 64),
			strconv.Itoa(p.InFlight),
		}
		for _, u := range p.Util {
			row = append(row, strconv.FormatFloat(u, 'g', -1, 64))
		}
		if err := w.Write(row); err != nil {
			f.Close()
			return err
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "mcsim: "+format+"\n", args...)
	os.Exit(1)
}
