package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRunFlagErrors(t *testing.T) {
	ctx := context.Background()
	var out, errb strings.Builder
	if err := run(ctx, []string{"-nope"}, &out, &errb); !errors.Is(err, errBadFlags) {
		t.Errorf("unknown flag: err = %v, want errBadFlags", err)
	}
	if !strings.Contains(errb.String(), "-nope") {
		t.Errorf("stderr did not mention the bad flag: %q", errb.String())
	}
	errb.Reset()
	if err := run(ctx, []string{"stray"}, &out, &errb); !errors.Is(err, errBadFlags) {
		t.Errorf("stray argument: err = %v, want errBadFlags", err)
	}
	if err := run(ctx, []string{"-h"}, &out, &errb); err != nil {
		t.Errorf("-h: err = %v, want nil (usage + exit 0)", err)
	}
	if err := run(ctx, []string{"-addr", "256.0.0.1:bad"}, &out, &errb); err == nil {
		t.Error("unlistenable -addr: err = nil")
	}
}

func TestServeBootHealthzAnalyzeShutdown(t *testing.T) {
	// Boot on an ephemeral port, read the printed URL, hit the two smoke
	// endpoints, then shut down via context cancellation (the test's
	// SIGTERM) and expect a clean exit.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	pr, pw := io.Pipe()
	var errb strings.Builder
	done := make(chan error, 1)
	go func() {
		err := run(ctx, []string{"-addr", "127.0.0.1:0", "-workers", "1"}, pw, &errb)
		pw.Close()
		done <- err
	}()

	sc := bufio.NewScanner(pr)
	var base string
	for sc.Scan() {
		if rest, ok := strings.CutPrefix(sc.Text(), "mcserved: listening on "); ok {
			base = rest
			break
		}
	}
	if base == "" {
		t.Fatalf("server never printed its listen URL (stderr: %s)", errb.String())
	}
	go io.Copy(io.Discard, pr) // keep draining so later prints don't block

	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	resp, err = client.Post(base+"/v1/analyze", "application/json",
		strings.NewReader(`{"org":"org1","lambda":0.0003}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"latency"`) {
		t.Fatalf("analyze over the wire: %d %s", resp.StatusCode, body)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v after graceful shutdown", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server did not shut down")
	}
}

func TestShutdownCancelsStreamingSweep(t *testing.T) {
	// SIGTERM mid-sweep: request contexts derive from the signal context,
	// so the engine stops at job granularity and shutdown completes far
	// sooner than the sweep would have taken — with a clean exit.
	if testing.Short() {
		t.Skip("streaming-shutdown drive skipped in -short")
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	pr, pw := io.Pipe()
	var errb strings.Builder
	done := make(chan error, 1)
	go func() {
		err := run(ctx, []string{"-addr", "127.0.0.1:0", "-workers", "1"}, pw, &errb)
		pw.Close()
		done <- err
	}()
	sc := bufio.NewScanner(pr)
	var base string
	for sc.Scan() {
		if rest, ok := strings.CutPrefix(sc.Text(), "mcserved: listening on "); ok {
			base = rest
			break
		}
	}
	if base == "" {
		t.Fatalf("server never printed its listen URL (stderr: %s)", errb.String())
	}
	go io.Copy(io.Discard, pr)

	// ~200 jobs × 550k messages: minutes uncancelled at one worker, so a
	// prompt return below can only come from cancellation.
	spec := `{"orgs":["m=4:2x1,2x2"],"loads":{"points":200},"warmup":25000,"measure":500000,"drain":25000}`
	resp, err := (&http.Client{}).Post(base+"/v1/sweep", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if _, err := bufio.NewReader(resp.Body).ReadString('\n'); err != nil {
		t.Fatalf("no first NDJSON row: %v", err)
	}
	cancel() // the test's SIGTERM, mid-stream
	start := time.Now()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v after mid-sweep shutdown", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("shutdown stalled behind the streaming sweep")
	}
	// Job granularity: at most one in-flight simulation (~1s) plus drain.
	if elapsed := time.Since(start); elapsed > 20*time.Second {
		t.Fatalf("shutdown took %v, sweep cancellation is not effective", elapsed)
	}
}

// TestObservabilityFlags boots with -log-format json and -pprof and checks
// the three wired surfaces: JSON access-log lines on stderr carrying the
// request id, the Prometheus exposition endpoint, and the pprof index.
func TestObservabilityFlags(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	pr, pw := io.Pipe()
	var errb syncBuilder
	done := make(chan error, 1)
	go func() {
		err := run(ctx, []string{"-addr", "127.0.0.1:0", "-workers", "1",
			"-log-format", "json", "-log-level", "info", "-pprof"}, pw, &errb)
		pw.Close()
		done <- err
	}()
	sc := bufio.NewScanner(pr)
	var base string
	for sc.Scan() {
		if rest, ok := strings.CutPrefix(sc.Text(), "mcserved: listening on "); ok {
			base = rest
			break
		}
	}
	if base == "" {
		t.Fatalf("server never printed its listen URL (stderr: %s)", errb.String())
	}
	go io.Copy(io.Discard, pr)

	client := &http.Client{Timeout: 10 * time.Second}
	req, _ := http.NewRequest("GET", base+"/healthz", nil)
	req.Header.Set("X-Request-ID", "obs-flag-test-1")
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "obs-flag-test-1" {
		t.Errorf("X-Request-ID echoed as %q, want obs-flag-test-1", got)
	}

	resp, err = client.Get(base + "/metrics/prometheus")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "# TYPE mcserved_requests_total counter") {
		t.Fatalf("prometheus exposition: %d %q", resp.StatusCode, body)
	}

	resp, err = client.Get(base + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("-pprof index: %d, want 200", resp.StatusCode)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v after shutdown", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server did not shut down")
	}

	// One JSON access-log line per request, carrying the caller's id.
	found := false
	for _, line := range strings.Split(errb.String(), "\n") {
		if !strings.Contains(line, `"msg":"request"`) {
			continue
		}
		var doc map[string]any
		if err := json.Unmarshal([]byte(line), &doc); err != nil {
			t.Fatalf("access-log line is not JSON: %v\n%s", err, line)
		}
		if doc["request_id"] == "obs-flag-test-1" && doc["route"] == "GET /healthz" {
			found = true
		}
	}
	if !found {
		t.Errorf("no JSON access-log line with the caller's request id; stderr:\n%s", errb.String())
	}
}

// TestPprofOffByDefault: without -pprof the profiling endpoints must not
// exist.
func TestPprofOffByDefault(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	pr, pw := io.Pipe()
	var errb syncBuilder
	done := make(chan error, 1)
	go func() {
		err := run(ctx, []string{"-addr", "127.0.0.1:0", "-workers", "1", "-log-format", "off"}, pw, &errb)
		pw.Close()
		done <- err
	}()
	sc := bufio.NewScanner(pr)
	var base string
	for sc.Scan() {
		if rest, ok := strings.CutPrefix(sc.Text(), "mcserved: listening on "); ok {
			base = rest
			break
		}
	}
	if base == "" {
		t.Fatalf("server never printed its listen URL (stderr: %s)", errb.String())
	}
	go io.Copy(io.Discard, pr)

	resp, err := (&http.Client{Timeout: 10 * time.Second}).Get(base + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof without -pprof: %d, want 404", resp.StatusCode)
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("run returned %v after shutdown", err)
	}
}

// syncBuilder is a strings.Builder safe for the server goroutine writing
// logs while the test reads.
type syncBuilder struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuilder) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuilder) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}
