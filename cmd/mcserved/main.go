// Command mcserved runs the capacity-planning service: the analytic model,
// the simulator and the sweep engine behind a concurrent HTTP JSON API (see
// internal/serve for the endpoint reference).
//
// Usage:
//
//	mcserved                                  # serve on 127.0.0.1:8080
//	mcserved -addr :9000 -workers 8           # all interfaces, 8 sim workers
//	mcserved -addr 127.0.0.1:0                # ephemeral port (printed)
//	mcserved -cache results/cache             # share mcsweep's disk cache
//	mcserved -log-format json -log-level debug # structured telemetry on stderr
//	mcserved -pprof                           # profiling at /debug/pprof/
//
// A quick session against a running server:
//
//	curl -s localhost:8080/healthz
//	curl -s -d '{"org":"org1","lambda":0.0003}' localhost:8080/v1/analyze
//	curl -s -d '{"org":"org2","lambda":0.0005,"measure":10000}' localhost:8080/v1/simulate
//	curl -s localhost:8080/v1/jobs/<id>
//	curl -s -d '{"orgs":["org2"],"loads":{"points":4}}' localhost:8080/v1/sweep
//	curl -s localhost:8080/metrics            # JSON document
//	curl -s localhost:8080/metrics/prometheus # Prometheus text exposition
//
// The server prints its resolved listen URL on startup and shuts down
// gracefully on SIGINT/SIGTERM (in-flight jobs finish, listeners drain).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mcnet/internal/obs"
	"mcnet/internal/serve"
	"mcnet/internal/sweep"
)

// errBadFlags reports a flag-parsing failure whose details the FlagSet has
// already written to stderr.
var errBadFlags = errors.New("invalid arguments")

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if !errors.Is(err, errBadFlags) {
			fmt.Fprintf(os.Stderr, "mcserved: %v\n", err)
		}
		os.Exit(1)
	}
}

// run is the whole command behind main, factored out so tests can drive
// flag handling and the serve loop directly (cancelling ctx is the test's
// SIGTERM).
func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("mcserved", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr      = fs.String("addr", "127.0.0.1:8080", "listen address (port 0 picks an ephemeral port)")
		workers   = fs.Int("workers", 0, "simulation workers for the job queue (0 = GOMAXPROCS)")
		queue     = fs.Int("queue", 0, "pending-job queue depth before 429 (0 = 64)")
		cacheDir  = fs.String("cache", "", "disk outcome-cache directory, shareable with mcsweep -out <dir>/cache (default: memory only)")
		lruSize   = fs.Int("lru", 0, "in-memory cache entries for outcomes and analyze responses (0 = 4096)")
		sweeps    = fs.Int("sweeps", 0, "concurrent streaming sweeps before 429 (0 = 2)")
		maxJobs   = fs.Int("max-sweep-jobs", 0, "largest accepted sweep grid (0 = 10000)")
		logFormat = fs.String("log-format", "text", "structured log format: text|json|off")
		logLevel  = fs.String("log-level", "info", "minimum log level: debug|info|warn|error")
		pprofOn   = fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (see README §Observability)")
		paperRuns = fs.String("paper-runs", "", `reproduction run tree behind GET /v1/fidelity ("" = paper_runs)`)
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h/-help: usage already printed, exit 0
		}
		return errBadFlags
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "unexpected arguments: %v\n", fs.Args())
		return errBadFlags
	}

	cfg := serve.Config{
		Workers:          *workers,
		QueueDepth:       *queue,
		CacheSize:        *lruSize,
		ConcurrentSweeps: *sweeps,
		MaxSweepJobs:     *maxJobs,
		Pprof:            *pprofOn,
		PaperRuns:        *paperRuns,
	}
	if *logFormat != "off" {
		// Telemetry goes to stderr: stdout stays the operator interface (the
		// resolved listen URL, shutdown notice) so scripts that scrape it
		// keep working under -log-format json.
		logger, err := obs.NewLogger(stderr, *logFormat, *logLevel)
		if err != nil {
			return err
		}
		cfg.Logger = logger
	}
	if *cacheDir != "" {
		disk, err := sweep.NewDirCache(*cacheDir)
		if err != nil {
			return fmt.Errorf("opening -cache: %v", err)
		}
		cfg.Disk = disk
	}
	srv, err := serve.New(cfg)
	if err != nil {
		return err
	}
	defer srv.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("listening on %s: %v", *addr, err)
	}
	fmt.Fprintf(stdout, "mcserved: listening on http://%s\n", ln.Addr())

	hs := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		// Derive every request context from the signal context: on
		// SIGINT/SIGTERM, in-flight streaming sweeps are cancelled at job
		// granularity instead of stalling Shutdown until its timeout.
		BaseContext: func(net.Listener) context.Context { return ctx },
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		fmt.Fprintln(stdout, "mcserved: shutting down")
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		return hs.Shutdown(sctx)
	}
}
