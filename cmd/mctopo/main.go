// Command mctopo inspects interconnect topologies and multi-cluster
// organizations: node/switch counts (Eqs. 1–2), the route-length
// distribution (Eq. 4 for trees), average distance (Eqs. 8–9), and
// structural verification — for the paper's m-port n-tree and for the
// pluggable topologies (jellyfish, dragonfly) behind the same interface.
//
// Usage:
//
//	mctopo -ports 8 -levels 3                    # one tree
//	mctopo -ports 8 -levels 3 -topo jellyfish    # equal-budget random regular
//	mctopo -topo dragonfly -count 32             # global Dragonfly for 32 clusters
//	mctopo -org org1                             # a whole organization
//	mctopo -org org1 -topo jellyfish+dragonfly   # ... with swapped topologies
//	mctopo -ports 4 -levels 5 -check             # exhaustive wiring verification
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"mcnet/internal/routing"
	"mcnet/internal/system"
	"mcnet/internal/topo"
	"mcnet/internal/tree"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "mctopo: %v\n", err)
		os.Exit(1)
	}
}

// run is the testable body of the command: it parses args, writes the report
// to out and returns any failure instead of exiting.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("mctopo", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	var (
		ports    = fs.Int("ports", 0, "switch ports m (even)")
		levels   = fs.Int("levels", 0, "tree levels n")
		count    = fs.Int("count", 0, "terminal count for a standalone global interconnect (-topo dragonfly)")
		orgSpec  = fs.String("org", "", "organization to summarize instead of a single network")
		topoAxis = fs.String("topo", "", `topology: "<cluster>[+<global>]" with -org, a single kind otherwise`)
		check    = fs.Bool("check", false, "run exhaustive structural verification")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch {
	case *orgSpec != "":
		return runOrg(out, *orgSpec, *topoAxis, *check)
	case *ports > 0 && *levels > 0, *count > 0:
		return runNetwork(out, *ports, *levels, *count, *topoAxis, *check)
	default:
		return fmt.Errorf("specify -ports and -levels, or -org (see -h)")
	}
}

func runOrg(out io.Writer, orgSpec, topoAxis string, check bool) error {
	org, err := system.ParseOrganization(orgSpec)
	if err != nil {
		return err
	}
	if topoAxis != "" {
		if err := system.ApplyTopologyAxis(&org, topoAxis); err != nil {
			return err
		}
	}
	sys, err := system.New(org)
	if err != nil {
		return err
	}
	fmt.Fprint(out, sys.Summary())
	fmt.Fprintf(out, "\n  %3s %6s %8s %10s\n", "i", "N_i", "P_o(i)", "d_avg(i)")
	for i, c := range sys.Clusters {
		fmt.Fprintf(out, "  %3d %6d %8.4f %10.4f\n", i, c.Nodes, sys.POut(i), c.Net.AvgDistance())
	}
	if sys.ICN2 != nil {
		fmt.Fprintf(out, "\n  ICN2 NCA-level distribution P(h): %v\n", formatDist("j", sys.ICN2ProbH()))
	} else {
		fmt.Fprintf(out, "\n  ICN2 route-length distribution P(d): %v\n", formatDist("d", sys.ICN2RouteDist()))
	}
	if check {
		for _, c := range sys.Clusters {
			if err := c.Shape.CheckStructure(); err != nil {
				return fmt.Errorf("cluster %d ECN1: %v", c.Index, err)
			}
			if err := c.Net.CheckStructure(); err != nil {
				return fmt.Errorf("cluster %d ICN1 (%s): %v", c.Index, c.Net.Kind(), err)
			}
		}
		if err := sys.ICN2Net.CheckStructure(); err != nil {
			return fmt.Errorf("ICN2 (%s): %v", sys.ICN2Net.Kind(), err)
		}
		fmt.Fprintln(out, "  structural verification: OK")
	}
	return nil
}

func runNetwork(out io.Writer, ports, levels, count int, topoSpec string, check bool) error {
	spec, err := topo.ParseSpec(topoSpec)
	if err != nil {
		return err
	}
	if spec.Kind == topo.KindDragonfly {
		if count <= 0 {
			return fmt.Errorf("a standalone dragonfly is sized by -count (terminal ports), not -ports/-levels")
		}
		nt, err := topo.NewGlobal(spec, ports, count, routing.Balanced)
		if err != nil {
			return err
		}
		return printTopology(out, nt, check)
	}
	if ports <= 0 || levels <= 0 {
		return fmt.Errorf("topology %s needs -ports and -levels", spec)
	}
	if spec.IsZero() {
		// The classic tree report, with the paper's closed forms and the
		// balanced-routing load census no generic plugin exposes.
		return runTree(out, ports, levels, check)
	}
	nt, err := topo.New(spec, ports, levels, routing.Balanced)
	if err != nil {
		return err
	}
	return printTopology(out, nt, check)
}

func runTree(out io.Writer, ports, levels int, check bool) error {
	t, err := tree.New(ports, levels)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "%v\n", t)
	fmt.Fprintf(out, "  nodes (Eq.1):    %d\n", t.Nodes())
	fmt.Fprintf(out, "  switches (Eq.2): %d (", t.Switches())
	for l := 1; l <= t.Levels(); l++ {
		if l > 1 {
			fmt.Fprint(out, " + ")
		}
		fmt.Fprintf(out, "%d@L%d", t.LevelSize(l), l)
	}
	fmt.Fprintln(out, ")")
	fmt.Fprintf(out, "  directed channels: %d\n", t.Channels())
	fmt.Fprintf(out, "  P(j) (Eq.4):     %v\n", formatDist("j", t.ProbJ()))
	fmt.Fprintf(out, "  d_avg (Eq.8):    %.6f   closed form (Eq.9): %.6f\n",
		t.AvgDistance(), t.AvgDistanceClosedForm())
	fmt.Fprintf(out, "  bisection width:  %d links (full bisection: N/2)\n", t.BisectionWidth())
	if check {
		if err := t.CheckStructure(); err != nil {
			return err
		}
		if err := t.VerifyFullBisection(); err != nil {
			return err
		}
		fmt.Fprintln(out, "  structural verification: OK")
		r := routing.Router{T: t}
		fmt.Fprintln(out, "  all-pairs balanced routing load:")
		for _, s := range routing.SummarizeLoads(t, r.LoadMatrix()) {
			fmt.Fprintf(out, "    %v\n", s)
		}
	}
	return nil
}

// printTopology reports any topo.Topology through the plugin contract alone.
func printTopology(out io.Writer, nt topo.Topology, check bool) error {
	fmt.Fprintf(out, "%v\n", nt)
	fmt.Fprintf(out, "  nodes:             %d\n", nt.Nodes())
	fmt.Fprintf(out, "  switches:          %d\n", nt.Switches())
	fmt.Fprintf(out, "  directed channels: %d\n", nt.Channels())
	fmt.Fprintf(out, "  P(d):              %v\n", formatDist("d", nt.RouteDist()))
	fmt.Fprintf(out, "  d_avg:             %.6f\n", nt.AvgDistance())
	fmt.Fprintf(out, "  max route length:  %d\n", nt.MaxRouteLen())
	if check {
		if err := nt.CheckStructure(); err != nil {
			return err
		}
		fmt.Fprintln(out, "  structural verification: OK")
	}
	return nil
}

// formatDist renders the non-zero tail of a distribution, labeling each
// entry by its index (the zero-skip leaves tree NCA distributions, which are
// dense, rendered exactly as before the topology plugins existed).
func formatDist(label string, p []float64) string {
	out := "["
	first := true
	for d, v := range p {
		if d == 0 || v == 0 {
			continue
		}
		if !first {
			out += " "
		}
		first = false
		out += fmt.Sprintf("%s=%d:%.4f", label, d, v)
	}
	return out + "]"
}
