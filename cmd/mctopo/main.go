// Command mctopo inspects m-port n-tree topologies and multi-cluster
// organizations: node/switch counts (Eqs. 1–2), the NCA-level distribution
// (Eq. 4), average distance (Eqs. 8–9), and structural verification.
//
// Usage:
//
//	mctopo -ports 8 -levels 3          # one tree
//	mctopo -org org1                   # a whole organization
//	mctopo -ports 4 -levels 5 -check   # exhaustive wiring verification
package main

import (
	"flag"
	"fmt"
	"os"

	"mcnet/internal/routing"
	"mcnet/internal/system"
	"mcnet/internal/tree"
)

func main() {
	var (
		ports   = flag.Int("ports", 0, "switch ports m (even)")
		levels  = flag.Int("levels", 0, "tree levels n")
		orgSpec = flag.String("org", "", "organization to summarize instead of a single tree")
		check   = flag.Bool("check", false, "run exhaustive structural verification")
	)
	flag.Parse()

	switch {
	case *orgSpec != "":
		org, err := system.ParseOrganization(*orgSpec)
		if err != nil {
			fatalf("%v", err)
		}
		sys, err := system.New(org)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Print(sys.Summary())
		fmt.Printf("\n  %3s %6s %8s %10s\n", "i", "N_i", "P_o(i)", "d_avg(i)")
		for i, c := range sys.Clusters {
			fmt.Printf("  %3d %6d %8.4f %10.4f\n", i, c.Nodes, sys.POut(i), c.Shape.AvgDistance())
		}
		fmt.Printf("\n  ICN2 NCA-level distribution P(h): %v\n", formatDist(sys.ICN2ProbH()))
		if *check {
			for _, c := range sys.Clusters {
				if err := c.Shape.CheckStructure(); err != nil {
					fatalf("cluster %d: %v", c.Index, err)
				}
			}
			if err := sys.ICN2.CheckStructure(); err != nil {
				fatalf("ICN2: %v", err)
			}
			fmt.Println("  structural verification: OK")
		}
	case *ports > 0 && *levels > 0:
		t, err := tree.New(*ports, *levels)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("%v\n", t)
		fmt.Printf("  nodes (Eq.1):    %d\n", t.Nodes())
		fmt.Printf("  switches (Eq.2): %d (", t.Switches())
		for l := 1; l <= t.Levels(); l++ {
			if l > 1 {
				fmt.Print(" + ")
			}
			fmt.Printf("%d@L%d", t.LevelSize(l), l)
		}
		fmt.Println(")")
		fmt.Printf("  directed channels: %d\n", t.Channels())
		fmt.Printf("  P(j) (Eq.4):     %v\n", formatDist(t.ProbJ()))
		fmt.Printf("  d_avg (Eq.8):    %.6f   closed form (Eq.9): %.6f\n",
			t.AvgDistance(), t.AvgDistanceClosedForm())
		fmt.Printf("  bisection width:  %d links (full bisection: N/2)\n", t.BisectionWidth())
		if *check {
			if err := t.CheckStructure(); err != nil {
				fatalf("%v", err)
			}
			if err := t.VerifyFullBisection(); err != nil {
				fatalf("%v", err)
			}
			fmt.Println("  structural verification: OK")
			r := routing.Router{T: t}
			fmt.Println("  all-pairs balanced routing load:")
			for _, s := range routing.SummarizeLoads(t, r.LoadMatrix()) {
				fmt.Printf("    %v\n", s)
			}
		}
	default:
		fatalf("specify -ports and -levels, or -org (see -h)")
	}
}

func formatDist(p []float64) string {
	out := "["
	for j, v := range p {
		if j == 0 {
			continue
		}
		if j > 1 {
			out += " "
		}
		out += fmt.Sprintf("j=%d:%.4f", j, v)
	}
	return out + "]"
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "mctopo: "+format+"\n", args...)
	os.Exit(1)
}
