package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRun(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		want    []string // substrings the report must contain
		wantErr string   // substring of the expected error ("" = success)
	}{
		{
			name: "tree with check",
			args: []string{"-ports", "4", "-levels", "2", "-check"},
			want: []string{
				"nodes (Eq.1):    8",
				"P(j) (Eq.4)",
				"structural verification: OK",
				"all-pairs balanced routing load:",
			},
		},
		{
			name: "explicit fattree matches default report",
			args: []string{"-ports", "4", "-levels", "2", "-topo", "fattree"},
			want: []string{"nodes (Eq.1):    8", "d_avg (Eq.8)"},
		},
		{
			name: "jellyfish with check",
			args: []string{"-ports", "4", "-levels", "2", "-topo", "jellyfish", "-check"},
			want: []string{"jellyfish", "P(d):", "structural verification: OK"},
		},
		{
			name: "seeded jellyfish",
			args: []string{"-ports", "4", "-levels", "2", "-topo", "jellyfish.s9", "-check"},
			want: []string{"jellyfish", "structural verification: OK"},
		},
		{
			name: "standalone dragonfly with check",
			args: []string{"-topo", "dragonfly", "-count", "32", "-check"},
			want: []string{"dragonfly", "max route length:  5", "structural verification: OK"},
		},
		{
			name: "org default with check",
			args: []string{"-org", "org1", "-check"},
			want: []string{"N=1120", "ICN2 NCA-level distribution P(h)", "structural verification: OK"},
		},
		{
			name: "org with swapped topologies and check",
			args: []string{"-org", "org1", "-topo", "jellyfish+dragonfly", "-check"},
			want: []string{"N=1120", "ICN2 route-length distribution P(d)", "structural verification: OK"},
		},
		{
			name: "org spec with inline topology suffixes",
			args: []string{"-org", "m=8@icn2topo=dragonfly:4x2@topo=jellyfish,4x3", "-check"},
			want: []string{"ICN2 route-length distribution P(d)", "structural verification: OK"},
		},
		{
			name:    "no selection",
			args:    nil,
			wantErr: "specify -ports and -levels, or -org",
		},
		{
			name:    "unknown topology",
			args:    []string{"-ports", "4", "-levels", "2", "-topo", "torus"},
			wantErr: "unknown topology",
		},
		{
			name:    "dragonfly needs a terminal count",
			args:    []string{"-ports", "4", "-levels", "2", "-topo", "dragonfly"},
			wantErr: "-count",
		},
		{
			name:    "dragonfly is not an intra-cluster topology",
			args:    []string{"-org", "org1", "-topo", "dragonfly"},
			wantErr: "not an intra-cluster topology",
		},
		{
			name:    "bad organization",
			args:    []string{"-org", "m=3:2x1"},
			wantErr: "must be even",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var out bytes.Buffer
			err := run(c.args, &out)
			if c.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), c.wantErr) {
					t.Fatalf("run(%v) error = %v, want substring %q", c.args, err, c.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("run(%v): %v\noutput:\n%s", c.args, err, out.String())
			}
			for _, frag := range c.want {
				if !strings.Contains(out.String(), frag) {
					t.Errorf("run(%v) output missing %q:\n%s", c.args, frag, out.String())
				}
			}
		})
	}
}
