// Command mclat evaluates the analytical latency model (the paper's
// contribution) for a multi-cluster organization.
//
// Usage:
//
//	mclat -org org1 -lambda 2e-4              # one operating point
//	mclat -org org2 -m 64 -lm 512 -sweep 8    # a sweep up to saturation
//	mclat -org "m=4:4x2,4x3" -saturation      # custom org, find λ_sat
//	mclat -org org1 -lambda 1e-4 -percluster  # per-cluster breakdown
package main

import (
	"flag"
	"fmt"
	"os"

	"mcnet/internal/analytic"
	"mcnet/internal/system"
	"mcnet/internal/units"
)

func main() {
	var (
		orgSpec    = flag.String("org", "org1", `organization: org1|org2|"m=<ports>:<count>x<levels>[@rate],..."`)
		mFlits     = flag.Int("m", 32, "message length M in flits")
		lm         = flag.Int("lm", 256, "flit length L_m in bytes")
		lambda     = flag.Float64("lambda", 0, "offered traffic λ_g (messages/node/time-unit)")
		sweep      = flag.Int("sweep", 0, "evaluate a sweep of this many points up to saturation")
		saturation = flag.Bool("saturation", false, "print the model's saturation point")
		perCluster = flag.Bool("percluster", false, "print the per-cluster breakdown")
		literal    = flag.Bool("paper-literal", false, "use the paper-literal interpretation (ablation)")
	)
	flag.Parse()

	org, err := system.ParseOrganization(*orgSpec)
	if err != nil {
		fatalf("%v", err)
	}
	sys, err := system.New(org)
	if err != nil {
		fatalf("%v", err)
	}
	par := units.Default().WithMessage(*mFlits, *lm)
	opt := analytic.DefaultOptions()
	if *literal {
		opt = analytic.PaperLiteralOptions()
	}
	model, err := analytic.New(sys, par, opt)
	if err != nil {
		fatalf("%v", err)
	}

	fmt.Print(sys.Summary())
	fmt.Printf("  parameters: %s  (t_cn=%.4g, t_cs=%.4g)\n\n", par, par.Tcn(), par.Tcs())

	sat := model.SaturationPoint(1e-6, 1, 1e-4)
	if *saturation || *sweep > 0 {
		fmt.Printf("model saturation point λ_sat = %.6g\n\n", sat)
	}

	evalOne := func(l float64) {
		res, err := model.Evaluate(l)
		if err != nil {
			fmt.Printf("λ_g=%.6g: saturated (%s)\n", l, res.Bottleneck)
			return
		}
		fmt.Printf("λ_g=%.6g: mean message latency = %.4f time units\n", l, res.MeanLatency)
		if *perCluster {
			fmt.Printf("  %3s %6s %8s %9s %9s %9s %9s\n", "i", "N_i", "P_o", "T_intra", "T_inter", "W_conc", "ℓ_i")
			for i, cr := range res.PerCluster {
				fmt.Printf("  %3d %6d %8.4f %9.3f %9.3f %9.3f %9.3f\n",
					i, sys.Clusters[i].Nodes, cr.POut, cr.TIntra, cr.TInter, cr.WConc, cr.Latency)
			}
		}
	}

	switch {
	case *sweep > 0:
		fmt.Printf("%14s %16s\n", "lambda", "latency")
		for i := 1; i <= *sweep; i++ {
			l := sat * float64(i) / float64(*sweep+1)
			v, err := model.MeanLatency(l)
			if err != nil {
				fmt.Printf("%14.6g %16s\n", l, "saturated")
				continue
			}
			fmt.Printf("%14.6g %16.4f\n", l, v)
		}
	case *lambda > 0:
		evalOne(*lambda)
	case !*saturation:
		// Default: a short characteristic table.
		for _, frac := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
			evalOne(frac * sat)
		}
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "mclat: "+format+"\n", args...)
	os.Exit(1)
}
