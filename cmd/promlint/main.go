// Command promlint checks a Prometheus text exposition (format 0.0.4) read
// from stdin or from file arguments: every family must carry # HELP and
// # TYPE lines, names must match the Prometheus grammar, samples must group
// under their family, and histogram/summary series must use the canonical
// suffixes. It is the smoke-test half of the observability contract: the
// server promises a lint-clean scrape, and CI pipes /metrics/prometheus
// through this command to hold it to that.
//
// Usage:
//
//	curl -s localhost:8080/metrics/prometheus | promlint
//	promlint scrape1.txt scrape2.txt
//
// Exit status is 0 when every input is clean, 1 otherwise (with one line
// per violation on stderr).
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"mcnet/internal/obs"
)

// errBadFlags mirrors the mcsweep convention: flag errors are already
// printed by the FlagSet.
var errBadFlags = errors.New("invalid arguments")

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if !errors.Is(err, errBadFlags) {
			fmt.Fprintf(os.Stderr, "promlint: %v\n", err)
		}
		os.Exit(1)
	}
}

// run is the whole command behind main, factored out for tests.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("promlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: promlint [file ...]  (no files: lint stdin)")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return errBadFlags
	}
	if fs.NArg() == 0 {
		doc, err := io.ReadAll(os.Stdin)
		if err != nil {
			return fmt.Errorf("reading stdin: %v", err)
		}
		if err := obs.LintExposition(doc); err != nil {
			return err
		}
		fmt.Fprintln(stdout, "stdin: clean")
		return nil
	}
	var failed bool
	for _, path := range fs.Args() {
		doc, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(stderr, "%s: %v\n", path, err)
			failed = true
			continue
		}
		if err := obs.LintExposition(doc); err != nil {
			fmt.Fprintf(stderr, "%s: %v\n", path, err)
			failed = true
			continue
		}
		fmt.Fprintf(stdout, "%s: clean\n", path)
	}
	if failed {
		return errors.New("lint failed")
	}
	return nil
}
