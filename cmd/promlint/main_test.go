package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const cleanDoc = `# HELP demo_requests_total Requests served.
# TYPE demo_requests_total counter
demo_requests_total{route="GET /x"} 12
`

const dirtyDoc = `demo_requests_total 12
`

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCleanFile(t *testing.T) {
	path := writeFile(t, "clean.txt", cleanDoc)
	var stdout, stderr strings.Builder
	if err := run([]string{path}, &stdout, &stderr); err != nil {
		t.Fatalf("run() = %v, stderr %q", err, stderr.String())
	}
	if !strings.Contains(stdout.String(), "clean") {
		t.Errorf("stdout = %q, want a clean report", stdout.String())
	}
}

func TestDirtyFileFails(t *testing.T) {
	path := writeFile(t, "dirty.txt", dirtyDoc)
	var stdout, stderr strings.Builder
	if err := run([]string{path}, &stdout, &stderr); err == nil {
		t.Fatal("run() accepted a sample without HELP/TYPE")
	}
	if !strings.Contains(stderr.String(), path) {
		t.Errorf("stderr = %q, want the failing path named", stderr.String())
	}
}

func TestMixedFilesFailAndReportEach(t *testing.T) {
	clean := writeFile(t, "clean.txt", cleanDoc)
	dirty := writeFile(t, "dirty.txt", dirtyDoc)
	var stdout, stderr strings.Builder
	if err := run([]string{clean, dirty}, &stdout, &stderr); err == nil {
		t.Fatal("run() passed with one dirty input")
	}
	if !strings.Contains(stdout.String(), clean) {
		t.Errorf("stdout = %q, want the clean path reported", stdout.String())
	}
	if !strings.Contains(stderr.String(), dirty) {
		t.Errorf("stderr = %q, want the dirty path reported", stderr.String())
	}
}

func TestMissingFile(t *testing.T) {
	var stdout, stderr strings.Builder
	if err := run([]string{filepath.Join(t.TempDir(), "absent.txt")}, &stdout, &stderr); err == nil {
		t.Fatal("run() passed with an unreadable input")
	}
}
