// Command mcsweep runs a declarative parameter sweep: a JSON spec file (or a
// builtin named spec) in, a results directory of CSV + JSONL out. Jobs run
// concurrently on a worker pool, every simulation outcome is content-hash
// cached on disk, and output is byte-identical across runs and worker
// counts.
//
// Usage:
//
//	mcsweep -spec fig3-m32 -dry-run          # print the expanded job grid
//	mcsweep -spec fig3-m32 -out results/     # run the Figure 3 (M=32) grid
//	mcsweep -spec fig3-m32 -out results/ -resume   # instant: 100% cache hits
//	mcsweep -spec mysweep.json -workers 4    # custom spec, bounded parallelism
//	mcsweep -spec demo -print-spec           # emit a spec JSON to start from
//	mcsweep -spec bursty -out results/       # burstiness × size-mix grid
//	mcsweep -spec demo -arrivals mmpp:16:32 -sizes bimodal:8:128:0.2 -out results/
//	mcsweep -spec hetero-links -out results/ # per-tier link technology grid
//	mcsweep -spec demo -links uniform,icn2=0.04/0.02/0.004 -out results/
//	mcsweep -spec demo -telemetry -out results/  # per-tier contention columns + reports
//
// A spec names its axes (organizations, message geometry, traffic patterns,
// routing policies, arrival processes, message-length distributions, load
// grid, replications); the cross product is the job grid. Without -resume the grid's own cache entries are invalidated first,
// so the run measures everything afresh (other sweeps sharing the output
// directory keep their cache); with -resume, previously completed jobs are
// reused and an interrupted sweep continues where it stopped.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"mcnet/internal/mcsim"
	"mcnet/internal/sweep"
)

// errBadFlags reports a flag-parsing failure whose details the FlagSet has
// already written to stderr.
var errBadFlags = errors.New("invalid arguments")

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if !errors.Is(err, errBadFlags) {
			fmt.Fprintf(os.Stderr, "mcsweep: %v\n", err)
		}
		os.Exit(1)
	}
}

// run is the whole command behind main, factored out so tests can drive flag
// handling and execution directly.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("mcsweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		specArg   = fs.String("spec", "", "spec file (JSON) or builtin name: "+strings.Join(sweep.BuiltinNames(), "|"))
		out       = fs.String("out", "results", "output directory (CSV, JSONL, cache)")
		workers   = fs.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
		resume    = fs.Bool("resume", false, "reuse cached job outcomes from a previous run")
		dryRun    = fs.Bool("dry-run", false, "print the expanded job grid and exit")
		printSpec = fs.Bool("print-spec", false, "print the normalized spec as JSON and exit")
		warmup    = fs.Int("warmup", -1, "override spec warmup message count")
		measure   = fs.Int("measure", -1, "override spec measure message count")
		drain     = fs.Int("drain", -1, "override spec drain message count")
		seed      = fs.Uint64("seed", 0, "override spec base seed")
		reps      = fs.Int("reps", 0, "override spec replications per point")
		arrivals  = fs.String("arrivals", "", "override spec arrival axis (comma-separated: poisson|deterministic|mmpp:<peak>:<burst>)")
		sizes     = fs.String("sizes", "", "override spec size axis (comma-separated: fixed|bimodal:<short>:<long>:<plong>|geometric:<mean>)")
		links     = fs.String("links", "", "override spec link-technology axis (comma-separated: uniform|<tier>=<an>/<as>/<bn>[+...] over icn1,ecn1,icn2,conc)")
		topos     = fs.String("topos", "", "override spec topology axis (comma-separated: fattree|jellyfish[.s<seed>], optionally +fattree|+dragonfly for ICN2)")
		telemetry = fs.Bool("telemetry", false, "collect per-tier contention telemetry: adds the telemetry CSV columns and writes one report per executed job under <out>/telemetry/<spec>/")
		verbose   = fs.Bool("v", false, "print one line per job as it finishes instead of the progress ticker")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h/-help: usage already printed, exit 0
		}
		// The FlagSet already printed the error and usage to stderr; don't
		// repeat the message.
		return errBadFlags
	}
	if *specArg == "" {
		return fmt.Errorf("missing -spec (a JSON file or one of: %s)", strings.Join(sweep.BuiltinNames(), ", "))
	}

	spec, err := loadSpec(*specArg)
	if err != nil {
		return err
	}
	if *warmup >= 0 {
		spec.Warmup = *warmup
	}
	if *measure >= 0 {
		spec.Measure = *measure
	}
	if *drain >= 0 {
		spec.Drain = *drain
	}
	if *seed != 0 {
		spec.BaseSeed = *seed
	}
	if *reps > 0 {
		spec.Reps = *reps
	}
	if *arrivals != "" {
		spec.Arrivals = strings.Split(*arrivals, ",")
	}
	if *sizes != "" {
		spec.Sizes = strings.Split(*sizes, ",")
	}
	if *links != "" {
		spec.Links = strings.Split(*links, ",")
	}
	if *topos != "" {
		spec.Topologies = strings.Split(*topos, ",")
	}
	if *telemetry {
		spec.Telemetry = true
	}
	spec = spec.Normalized()

	if *printSpec {
		b, err := json.MarshalIndent(spec, "", "  ")
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, string(b))
		return nil
	}

	jobs, err := sweep.Expand(spec)
	if err != nil {
		return err
	}
	if *dryRun {
		fmt.Fprintf(stdout, "sweep %q expands to:\n%s", spec.Name, sweep.FormatGrid(jobs))
		return nil
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		return fmt.Errorf("creating -out: %v", err)
	}
	cache, err := sweep.NewDirCache(filepath.Join(*out, "cache"))
	if err != nil {
		return fmt.Errorf("opening cache: %v", err)
	}
	if !*resume {
		// Invalidate only this grid's entries: other specs sharing the
		// output directory keep their cached outcomes.
		for _, j := range jobs {
			if err := cache.Delete(j.Key()); err != nil {
				return fmt.Errorf("clearing cache: %v", err)
			}
		}
	}
	csvPath := filepath.Join(*out, spec.Name+".csv")
	jsonlPath := filepath.Join(*out, spec.Name+".jsonl")
	csvFile, err := os.Create(csvPath)
	if err != nil {
		return err
	}
	defer csvFile.Close()
	jsonlFile, err := os.Create(jsonlPath)
	if err != nil {
		return err
	}
	defer jsonlFile.Close()
	csvSink := sweep.NewCSVSink(csvFile)
	// The workload, links and topology columns appear only when the spec
	// actually sweeps those axes, so older specs keep their CSV schema.
	csvSink.Workload = spec.HasWorkloadAxes()
	csvSink.Links = spec.HasLinkAxis()
	csvSink.Topology = spec.HasTopologyAxis()
	csvSink.Telemetry = spec.Telemetry
	jsonlSink := sweep.NewJSONLSink(jsonlFile)

	start := time.Now()
	eng := &sweep.Engine{
		Workers: *workers,
		Cache:   cache,
		Sinks:   []sweep.Sink{csvSink, jsonlSink},
	}
	var teleDir string
	var teleErr teleError
	if spec.Telemetry {
		// One full contention report per executed job (cache hits have no
		// fresh report — their digest is already in the CSV/JSONL rows).
		// Workers call the sink concurrently; each job writes its own file.
		teleDir = filepath.Join(*out, "telemetry", spec.Name)
		if err := os.MkdirAll(teleDir, 0o755); err != nil {
			return fmt.Errorf("creating telemetry dir: %v", err)
		}
		eng.TelemetrySink = func(j sweep.Job, rep *mcsim.TelemetryReport) {
			b, err := json.Marshal(rep)
			if err == nil {
				err = os.WriteFile(filepath.Join(teleDir, j.Key()[:12]+".json"), append(b, '\n'), 0o644)
			}
			if err != nil {
				teleErr.set(fmt.Errorf("writing telemetry report for %s: %v", j.Key()[:12], err))
			}
		}
	}
	if *verbose {
		// Per-job lifecycle lines from the engine's Observer hook replace
		// the in-place ticker (the two would fight over the same terminal
		// line).
		eng.Observer = &jobLogger{w: stderr}
	} else {
		width := 0 // pad to the widest line yet, so \r fully overwrites
		eng.Progress = func(p sweep.Progress) {
			line := fmt.Sprintf("%d/%d jobs (%d cache hits", p.Done, p.Total, p.CacheHits)
			if elapsed := time.Since(start).Seconds(); elapsed > 0 {
				rate := float64(p.Done) / elapsed
				line += fmt.Sprintf(", %.1f jobs/s", rate)
				if p.Done < p.Total && rate > 0 {
					eta := time.Duration(float64(p.Total-p.Done) / rate * float64(time.Second))
					line += fmt.Sprintf(", ETA %s", eta.Round(time.Second))
				}
			}
			line += ")"
			if len(line) > width {
				width = len(line)
			}
			fmt.Fprintf(stderr, "\r%-*s", width, line)
		}
	}
	sum, err := eng.RunJobs(spec, jobs)
	fmt.Fprintln(stderr)
	if err != nil {
		return err
	}
	if err := csvSink.Flush(); err != nil {
		return fmt.Errorf("flushing %s: %v", csvPath, err)
	}
	if err := jsonlSink.Flush(); err != nil {
		return fmt.Errorf("flushing %s: %v", jsonlPath, err)
	}
	if err := teleErr.get(); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "sweep %q: %d jobs, %d executed, %d cache hits in %v\n",
		spec.Name, sum.Total, sum.Executed, sum.CacheHits, time.Since(start).Round(time.Millisecond))
	fmt.Fprintf(stdout, "wrote %s\nwrote %s\n", csvPath, jsonlPath)
	if teleDir != "" {
		fmt.Fprintf(stdout, "wrote %d telemetry reports to %s\n", sum.Executed, teleDir)
	}
	return nil
}

// teleError records the first telemetry-sink failure across workers.
type teleError struct {
	mu  sync.Mutex
	err error
}

func (e *teleError) set(err error) {
	e.mu.Lock()
	if e.err == nil {
		e.err = err
	}
	e.mu.Unlock()
}

func (e *teleError) get() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.err
}

// jobLogger implements sweep.Observer for mcsweep -v: one line per job as
// it finishes, with its cache disposition and wall time. Workers call it
// concurrently, hence the mutex.
type jobLogger struct {
	mu sync.Mutex
	w  io.Writer
}

func (l *jobLogger) JobStarted(j sweep.Job) {}

func (l *jobLogger) JobFinished(j sweep.Job, cached bool, seconds float64) {
	disposition := "executed"
	if cached {
		disposition = "cache hit"
	}
	l.mu.Lock()
	fmt.Fprintf(l.w, "%s: %s in %.3fs\n", j.Key(), disposition, seconds)
	l.mu.Unlock()
}

// loadSpec resolves the -spec argument: a readable file is parsed as JSON,
// anything else must be a builtin name.
func loadSpec(arg string) (sweep.Spec, error) {
	if b, err := os.ReadFile(arg); err == nil {
		var spec sweep.Spec
		if err := json.Unmarshal(b, &spec); err != nil {
			return spec, fmt.Errorf("parsing %s: %v", arg, err)
		}
		if spec.Name == "" {
			spec.Name = strings.TrimSuffix(filepath.Base(arg), filepath.Ext(arg))
		}
		return spec, nil
	} else if !os.IsNotExist(err) {
		return sweep.Spec{}, fmt.Errorf("reading %s: %v", arg, err)
	}
	if spec, ok := sweep.Builtin(arg); ok {
		return spec, nil
	}
	return sweep.Spec{}, fmt.Errorf("spec %q: no such file or builtin (builtins: %s)",
		arg, strings.Join(sweep.BuiltinNames(), ", "))
}
