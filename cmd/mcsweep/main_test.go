package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mcnet/internal/sweep"
)

// tinySpecFile writes a minimal fast sweep spec and returns its path.
func tinySpecFile(t *testing.T, dir string) string {
	t.Helper()
	spec := sweep.Spec{
		Name:   "tiny",
		Orgs:   []string{"m=4:2x1"},
		Loads:  sweep.Loads{Lambdas: []float64{1e-4}},
		Warmup: 10, Measure: 60, Drain: 10,
		Model: "none",
	}
	b, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "tiny.json")
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunFlagHandling(t *testing.T) {
	dir := t.TempDir()
	specPath := tinySpecFile(t, dir)
	badJSON := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(badJSON, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}

	tests := []struct {
		name    string
		args    []string
		wantErr string // substring of the returned error ("" = success)
		wantOut string // substring of stdout
	}{
		{
			name:    "missing spec",
			args:    nil,
			wantErr: "missing -spec",
		},
		{
			name:    "unknown builtin",
			args:    []string{"-spec", "no-such-sweep"},
			wantErr: "no such file or builtin",
		},
		{
			name:    "malformed spec file",
			args:    []string{"-spec", badJSON},
			wantErr: "parsing",
		},
		{
			name:    "bad flag",
			args:    []string{"-definitely-not-a-flag"},
			wantErr: "invalid arguments",
		},
		{
			name:    "invalid spec contents",
			args:    []string{"-spec", "fig3-m32", "-measure", "0", "-dry-run"},
			wantErr: "measure phase must be positive",
		},
		{
			name: "help exits cleanly",
			args: []string{"-h"},
		},
		{
			name:    "dry run builtin",
			args:    []string{"-spec", "fig3-m32", "-dry-run"},
			wantOut: `sweep "fig3-m32" expands to:`,
		},
		{
			name:    "dry run counts jobs",
			args:    []string{"-spec", "fig3-m32", "-dry-run"},
			wantOut: "20 jobs",
		},
		{
			name:    "print spec applies overrides",
			args:    []string{"-spec", specPath, "-print-spec", "-measure", "123", "-seed", "9", "-reps", "2"},
			wantOut: `"measure": 123`,
		},
		{
			name:    "workload axes override",
			args:    []string{"-spec", specPath, "-print-spec", "-arrivals", "poisson,mmpp:16:32", "-sizes", "bimodal:8:128:0.2"},
			wantOut: `"mmpp:16:32"`,
		},
		{
			name:    "bad arrival override",
			args:    []string{"-spec", specPath, "-dry-run", "-arrivals", "sometimes"},
			wantErr: "unknown arrival process",
		},
		{
			name:    "bad size override",
			args:    []string{"-spec", specPath, "-dry-run", "-sizes", "pareto:3"},
			wantErr: "unknown size distribution",
		},
		{
			name:    "dry run shows workload columns",
			args:    []string{"-spec", "bursty", "-dry-run"},
			wantOut: "mmpp:64:64",
		},
		{
			name:    "links axis override",
			args:    []string{"-spec", specPath, "-print-spec", "-links", "uniform,icn2=0.04/0.02/0.004"},
			wantOut: `"icn2=0.04/0.02/0.004"`,
		},
		{
			name:    "bad links override",
			args:    []string{"-spec", specPath, "-dry-run", "-links", "icn3=1/1/1"},
			wantErr: "unknown tier",
		},
		{
			name:    "dry run shows links axis",
			args:    []string{"-spec", "hetero-links", "-dry-run"},
			wantOut: "icn1=0.01/0.005/0.001",
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			err := run(tc.args, &stdout, &stderr)
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("run(%v) error = %v, want substring %q", tc.args, err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("run(%v): %v\nstderr: %s", tc.args, err, stderr.String())
			}
			if !strings.Contains(stdout.String(), tc.wantOut) {
				t.Fatalf("run(%v) stdout = %q, want substring %q", tc.args, stdout.String(), tc.wantOut)
			}
		})
	}
}

// TestResumeMidFileWithWorkloadColumns reproduces an interrupted workload
// sweep: the cache holds outcomes for only the first half of the grid (the
// sweep died mid-file), and a -resume run must complete the rest and emit a
// CSV byte-identical to an uninterrupted fresh run — with the opt-in
// workload columns enabled, since the spec sweeps the arrival axis.
func TestResumeMidFileWithWorkloadColumns(t *testing.T) {
	dir := t.TempDir()
	spec := sweep.Spec{
		Name:     "wresume",
		Orgs:     []string{"m=4:2x1"},
		Arrivals: []string{"poisson", "mmpp:4:8"},
		Loads:    sweep.Loads{Lambdas: []float64{1e-4, 2e-4}},
		Warmup:   10, Measure: 60, Drain: 10,
		Model: "none",
	}
	b, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	specPath := filepath.Join(dir, "wresume.json")
	if err := os.WriteFile(specPath, b, 0o644); err != nil {
		t.Fatal(err)
	}

	// The reference: one uninterrupted run.
	freshOut := filepath.Join(dir, "fresh")
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-spec", specPath, "-out", freshOut}, &stdout, &stderr); err != nil {
		t.Fatalf("fresh run: %v", err)
	}
	freshCSV, err := os.ReadFile(filepath.Join(freshOut, "wresume.csv"))
	if err != nil {
		t.Fatal(err)
	}
	head := strings.SplitN(string(freshCSV), "\n", 2)[0]
	if !strings.HasSuffix(head, "arrival,size_dist") {
		t.Fatalf("workload sweep CSV header %q lacks the workload columns", head)
	}

	// The interrupted run: seed the resume directory's cache with outcomes
	// for only the first half of the expanded grid.
	jobs, err := sweep.Expand(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 4 {
		t.Fatalf("grid = %d jobs, want 4", len(jobs))
	}
	resumeOut := filepath.Join(dir, "resumed")
	cache, err := sweep.NewDirCache(filepath.Join(resumeOut, "cache"))
	if err != nil {
		t.Fatal(err)
	}
	half := &sweep.Engine{Cache: cache}
	if _, err := half.RunJobs(spec, jobs[:len(jobs)/2]); err != nil {
		t.Fatalf("seeding half the cache: %v", err)
	}

	stdout.Reset()
	if err := run([]string{"-spec", specPath, "-out", resumeOut, "-resume"}, &stdout, &stderr); err != nil {
		t.Fatalf("resume run: %v", err)
	}
	if !strings.Contains(stdout.String(), "2 executed, 2 cache hits") {
		t.Fatalf("resume summary = %q, want 2 executed / 2 cache hits", stdout.String())
	}
	resumedCSV, err := os.ReadFile(filepath.Join(resumeOut, "wresume.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(freshCSV, resumedCSV) {
		t.Fatalf("mid-file resume CSV differs from the fresh run:\n--- fresh ---\n%s--- resumed ---\n%s",
			freshCSV, resumedCSV)
	}
}

// TestRunExecuteAndResume runs a tiny sweep end to end, then resumes it and
// checks the second pass is pure cache hits with byte-identical output.
func TestRunExecuteAndResume(t *testing.T) {
	dir := t.TempDir()
	specPath := tinySpecFile(t, dir)
	out := filepath.Join(dir, "results")

	var stdout, stderr bytes.Buffer
	if err := run([]string{"-spec", specPath, "-out", out, "-workers", "2"}, &stdout, &stderr); err != nil {
		t.Fatalf("first run: %v", err)
	}
	if !strings.Contains(stdout.String(), "1 executed, 0 cache hits") {
		t.Fatalf("first run summary = %q, want 1 executed / 0 hits", stdout.String())
	}
	csv1, err := os.ReadFile(filepath.Join(out, "tiny.csv"))
	if err != nil {
		t.Fatalf("first run wrote no CSV: %v", err)
	}
	if _, err := os.Stat(filepath.Join(out, "tiny.jsonl")); err != nil {
		t.Fatalf("first run wrote no JSONL: %v", err)
	}

	stdout.Reset()
	if err := run([]string{"-spec", specPath, "-out", out, "-resume"}, &stdout, &stderr); err != nil {
		t.Fatalf("resume run: %v", err)
	}
	if !strings.Contains(stdout.String(), "0 executed, 1 cache hits") {
		t.Fatalf("resume summary = %q, want 0 executed / 1 hit", stdout.String())
	}
	csv2, err := os.ReadFile(filepath.Join(out, "tiny.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(csv1, csv2) {
		t.Fatalf("resumed CSV differs from original:\n--- first ---\n%s--- resumed ---\n%s", csv1, csv2)
	}

	// Without -resume the grid's cache entries are invalidated and re-run.
	stdout.Reset()
	if err := run([]string{"-spec", specPath, "-out", out}, &stdout, &stderr); err != nil {
		t.Fatalf("re-run: %v", err)
	}
	if !strings.Contains(stdout.String(), "1 executed, 0 cache hits") {
		t.Fatalf("re-run summary = %q, want fresh execution", stdout.String())
	}

	// The default-workload spec keeps the pre-workload CSV schema …
	csv3, err := os.ReadFile(filepath.Join(out, "tiny.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(strings.SplitN(string(csv3), "\n", 2)[0], "arrival") {
		t.Fatalf("default-workload CSV unexpectedly grew workload columns:\n%s", csv3)
	}

	// … and a spec sweeping the workload axes gains the workload columns.
	var wout bytes.Buffer
	if err := run([]string{"-spec", specPath, "-out", out, "-arrivals", "mmpp:4:8"}, &wout, &stderr); err != nil {
		t.Fatalf("workload run: %v", err)
	}
	wcsv, err := os.ReadFile(filepath.Join(out, "tiny.csv"))
	if err != nil {
		t.Fatal(err)
	}
	head := strings.SplitN(string(wcsv), "\n", 2)[0]
	if !strings.HasSuffix(head, "arrival,size_dist") {
		t.Fatalf("workload CSV header %q does not end with the workload columns", head)
	}
	if !strings.Contains(string(wcsv), "mmpp:4:8,fixed") {
		t.Fatalf("workload CSV rows missing axis values:\n%s", wcsv)
	}
}
