package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// stream builds a minimal go test -json stream with the given benchmark
// results (name → ns/op).
func stream(results map[string]float64) string {
	var b strings.Builder
	b.WriteString(`{"Action":"start","Package":"mcnet/internal/bench"}` + "\n")
	for name, ns := range results {
		fmt.Fprintf(&b, `{"Action":"run","Test":"%s"}`+"\n", name)
		fmt.Fprintf(&b, `{"Action":"output","Test":"%s","Output":"%s-8\n"}`+"\n", name, name)
		fmt.Fprintf(&b, `{"Action":"output","Test":"%s","Output":"     100\t%12.1f ns/op\t      24 B/op\t       1 allocs/op\n"}`+"\n", name, ns)
	}
	b.WriteString(`{"Action":"pass","Package":"mcnet/internal/bench"}` + "\n")
	return b.String()
}

func writeStream(t *testing.T, dir, name string, results map[string]float64) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(stream(results)), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseSyntheticStream(t *testing.T) {
	benches, err := Parse(strings.NewReader(stream(map[string]float64{
		"BenchmarkFoo": 100, "BenchmarkBar": 250.5,
	})))
	if err != nil {
		t.Fatal(err)
	}
	if len(benches) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(benches))
	}
	byName := map[string]Bench{}
	for _, b := range benches {
		byName[b.Name] = b
	}
	if b := byName["BenchmarkFoo"]; b.NsOp != 100 || b.BytesOp != 24 || b.AllocsOp != 1 {
		t.Fatalf("BenchmarkFoo parsed as %+v", b)
	}
	if b := byName["BenchmarkBar"]; b.NsOp != 250.5 {
		t.Fatalf("BenchmarkBar ns/op = %v, want 250.5", b.NsOp)
	}
}

// TestGateFailsOnSyntheticSlowdown is the acceptance proof that the gate is
// live: a 2× slowdown of one benchmark must fail at the CI threshold.
func TestGateFailsOnSyntheticSlowdown(t *testing.T) {
	dir := t.TempDir()
	old := writeStream(t, dir, "old.json", map[string]float64{
		"BenchmarkFoo": 100, "BenchmarkBar": 1000,
	})
	slow := writeStream(t, dir, "slow.json", map[string]float64{
		"BenchmarkFoo": 100, "BenchmarkBar": 2000,
	})

	var stdout, stderr bytes.Buffer
	err := run([]string{"-threshold", "1.25", old, slow}, &stdout, &stderr)
	if err == nil {
		t.Fatalf("2x slowdown passed the gate; output:\n%s", stdout.String())
	}
	if !strings.Contains(err.Error(), "BenchmarkBar") || !strings.Contains(err.Error(), "2.00×") {
		t.Fatalf("regression error %q does not name the offender and ratio", err)
	}
	if !strings.Contains(stdout.String(), "REGRESSION") {
		t.Fatalf("report does not mark the regression:\n%s", stdout.String())
	}
}

func TestGatePassesWithinThreshold(t *testing.T) {
	dir := t.TempDir()
	old := writeStream(t, dir, "old.json", map[string]float64{"BenchmarkFoo": 100})
	// 20% slower, 25% allowed; plus a brand-new benchmark with no baseline,
	// which must not fail the gate.
	new_ := writeStream(t, dir, "new.json", map[string]float64{
		"BenchmarkFoo": 120, "BenchmarkFresh": 9999,
	})
	var stdout, stderr bytes.Buffer
	if err := run([]string{old, new_}, &stdout, &stderr); err != nil {
		t.Fatalf("within-threshold run failed the gate: %v\n%s", err, stdout.String())
	}
	if !strings.Contains(stdout.String(), "no baseline") {
		t.Fatalf("report does not flag the baseline-less benchmark:\n%s", stdout.String())
	}
}

// res is one synthetic benchmark measurement; allocs < 0 renders a result
// line without -benchmem columns, the legacy artifact shape.
type res struct {
	ns     float64
	allocs float64
}

// streamAllocs builds a go test -json stream with explicit allocs/op values.
func streamAllocs(results map[string]res) string {
	var b strings.Builder
	b.WriteString(`{"Action":"start","Package":"mcnet/internal/bench"}` + "\n")
	for name, r := range results {
		fmt.Fprintf(&b, `{"Action":"run","Test":"%s"}`+"\n", name)
		fmt.Fprintf(&b, `{"Action":"output","Test":"%s","Output":"%s-8\n"}`+"\n", name, name)
		line := fmt.Sprintf(`     100\t%12.1f ns/op`, r.ns)
		if r.allocs >= 0 {
			line += fmt.Sprintf(`\t      24 B/op\t%8.0f allocs/op`, r.allocs)
		}
		fmt.Fprintf(&b, `{"Action":"output","Test":"%s","Output":"%s\n"}`+"\n", name, line)
	}
	b.WriteString(`{"Action":"pass","Package":"mcnet/internal/bench"}` + "\n")
	return b.String()
}

func writeAllocStream(t *testing.T, dir, name string, results map[string]res) string {
	t.Helper()
	return mustWrite(t, dir, name, streamAllocs(results))
}

// TestAllocGateFailsOnAllocOnlyRegression: a benchmark whose speed is
// unchanged but whose allocation count grew beyond the alloc threshold must
// fail the gate — allocs/op is the leading indicator of a pooling
// regression, and it moves before ns/op does on a fast machine.
func TestAllocGateFailsOnAllocOnlyRegression(t *testing.T) {
	dir := t.TempDir()
	old := writeAllocStream(t, dir, "old.json", map[string]res{
		"BenchmarkFoo": {ns: 100, allocs: 100}, "BenchmarkBar": {ns: 100, allocs: 50},
	})
	leaky := writeAllocStream(t, dir, "leaky.json", map[string]res{
		"BenchmarkFoo": {ns: 100, allocs: 200}, "BenchmarkBar": {ns: 100, allocs: 50},
	})
	var stdout, stderr bytes.Buffer
	err := run([]string{old, leaky}, &stdout, &stderr)
	if err == nil {
		t.Fatalf("2x alloc growth passed the gate; output:\n%s", stdout.String())
	}
	if !strings.Contains(err.Error(), "BenchmarkFoo") || !strings.Contains(err.Error(), "allocs/op") {
		t.Fatalf("error %q does not name the offender and the allocs/op unit", err)
	}
	if strings.Contains(err.Error(), "BenchmarkBar") {
		t.Fatalf("error %q blames the unchanged benchmark", err)
	}
	if !strings.Contains(stdout.String(), "ALLOC-REGRESSION") {
		t.Fatalf("report does not mark the alloc regression:\n%s", stdout.String())
	}

	// The same artifacts pass with a wider alloc threshold: the knob is live
	// and independent of -threshold.
	stdout.Reset()
	if err := run([]string{"-alloc-threshold", "2.5", old, leaky}, &stdout, &stderr); err != nil {
		t.Fatalf("2x alloc growth failed the gate at alloc-threshold 2.5: %v", err)
	}
}

// TestAllocGateZeroBaselineStrict: a zero-alloc baseline has no ratio — any
// new allocation is a regression of exactly the property the pools
// guarantee.
func TestAllocGateZeroBaselineStrict(t *testing.T) {
	dir := t.TempDir()
	old := writeAllocStream(t, dir, "old.json", map[string]res{"BenchmarkHot": {ns: 100, allocs: 0}})
	leaky := writeAllocStream(t, dir, "leaky.json", map[string]res{"BenchmarkHot": {ns: 100, allocs: 1}})
	var stdout, stderr bytes.Buffer
	err := run([]string{old, leaky}, &stdout, &stderr)
	if err == nil || !strings.Contains(err.Error(), "zero-alloc baseline broken") {
		t.Fatalf("1 alloc on a zero-alloc baseline did not fail the gate: %v\n%s", err, stdout.String())
	}
	// 0 → 0 stays clean.
	stdout.Reset()
	if err := run([]string{old, old}, &stdout, &stderr); err != nil {
		t.Fatalf("zero-alloc baseline fails against itself: %v", err)
	}
}

// TestAllocGateSkipsAllocsAbsentBaseline: a legacy baseline captured without
// -benchmem carries no allocs/op; the alloc gate must skip (with a notice),
// not fail — otherwise the first PR after introducing the gate could never
// land.
func TestAllocGateSkipsAllocsAbsentBaseline(t *testing.T) {
	dir := t.TempDir()
	legacy := writeAllocStream(t, dir, "legacy.json", map[string]res{"BenchmarkFoo": {ns: 100, allocs: -1}})
	new_ := writeAllocStream(t, dir, "new.json", map[string]res{"BenchmarkFoo": {ns: 100, allocs: 500}})
	var stdout, stderr bytes.Buffer
	if err := run([]string{legacy, new_}, &stdout, &stderr); err != nil {
		t.Fatalf("allocs-absent baseline failed the gate: %v\n%s", err, stdout.String())
	}
	if !strings.Contains(stdout.String(), "alloc gate skipped") {
		t.Fatalf("report does not notice the skipped alloc comparison:\n%s", stdout.String())
	}
	// Symmetric: the new run missing allocs/op skips too.
	stdout.Reset()
	if err := run([]string{new_, legacy}, &stdout, &stderr); err != nil {
		t.Fatalf("allocs-absent new run failed the gate: %v\n%s", err, stdout.String())
	}
}

// TestRemovedBenchmarkReportedNotFailed: a benchmark present in the
// baseline but absent from the new run must be reported (per row and in the
// summary count) without failing the gate — a removal lands together with
// its baseline refresh, like an addition does.
func TestRemovedBenchmarkReportedNotFailed(t *testing.T) {
	dir := t.TempDir()
	old := writeStream(t, dir, "old.json", map[string]float64{
		"BenchmarkFoo": 100, "BenchmarkGone": 500,
	})
	new_ := writeStream(t, dir, "new.json", map[string]float64{"BenchmarkFoo": 100})
	var stdout, stderr bytes.Buffer
	if err := run([]string{old, new_}, &stdout, &stderr); err != nil {
		t.Fatalf("removed benchmark failed the gate: %v\n%s", err, stdout.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "BenchmarkGone") || !strings.Contains(out, "(removed)") {
		t.Fatalf("report does not flag the removed benchmark:\n%s", out)
	}
	if !strings.Contains(out, "1 removed from the new run") {
		t.Fatalf("summary does not count the removed benchmark:\n%s", out)
	}
}

// TestUnmeasurableBaselineFailsGate: a zero ns/op entry makes the ratio Inf
// or NaN; NaN compares false against any threshold, so before the guard a
// broken artifact sailed through the gate. It must fail loudly instead.
func TestUnmeasurableBaselineFailsGate(t *testing.T) {
	dir := t.TempDir()
	old := writeStream(t, dir, "old.json", map[string]float64{
		"BenchmarkFoo": 100, "BenchmarkZero": 0,
	})
	new_ := writeStream(t, dir, "new.json", map[string]float64{
		"BenchmarkFoo": 100, "BenchmarkZero": 0, // NaN ratio without the guard
	})
	var stdout, stderr bytes.Buffer
	err := run([]string{old, new_}, &stdout, &stderr)
	if err == nil {
		t.Fatalf("zero-ns/op benchmark passed the gate:\n%s", stdout.String())
	}
	if !strings.Contains(err.Error(), "BenchmarkZero") || !strings.Contains(err.Error(), "unmeasurable") {
		t.Fatalf("error %q does not name the unmeasurable benchmark", err)
	}
	if !strings.Contains(stdout.String(), "UNMEASURABLE") {
		t.Fatalf("report does not mark the unmeasurable row:\n%s", stdout.String())
	}

	// A *new* benchmark (no baseline) with unmeasurable ns/op must also
	// fail, not slide through the (new, no baseline) report — it would
	// otherwise land in the next committed baseline and break the gate for
	// an innocent PR.
	newBad := writeStream(t, dir, "newbad.json", map[string]float64{
		"BenchmarkFoo": 100, "BenchmarkFreshZero": 0,
	})
	stdout.Reset()
	if err := run([]string{old, newBad}, &stdout, &stderr); err == nil ||
		!strings.Contains(err.Error(), "BenchmarkFreshZero") {
		t.Fatalf("unmeasurable baseline-less benchmark did not fail the gate: %v\n%s", err, stdout.String())
	}
}

// TestCommittedBaselinePassesGate compares the repo's committed BENCH
// artifact against itself: the gate must pass on the baseline it ships with.
func TestCommittedBaselinePassesGate(t *testing.T) {
	all, err := filepath.Glob(filepath.Join("..", "..", "BENCH_*.json"))
	if err != nil {
		t.Fatal(err)
	}
	// make bench leaves BENCH_<rev>.summary.json next to the raw artifact;
	// summaries are condensed JSON, not go test -json streams, so skip them.
	var matches []string
	for _, m := range all {
		if !strings.HasSuffix(m, ".summary.json") {
			matches = append(matches, m)
		}
	}
	if len(matches) == 0 {
		t.Fatal("no committed BENCH_*.json baseline at the repo root")
	}
	for _, baseline := range matches {
		var stdout, stderr bytes.Buffer
		if err := run([]string{baseline, baseline}, &stdout, &stderr); err != nil {
			t.Fatalf("committed baseline %s fails its own gate: %v", baseline, err)
		}
		benches, err := parseFile(baseline)
		if err != nil {
			t.Fatal(err)
		}
		if len(benches) < 5 {
			t.Fatalf("baseline %s has %d benchmarks, expected the internal/bench suite (>= 5)", baseline, len(benches))
		}
	}
}

func TestListMode(t *testing.T) {
	dir := t.TempDir()
	path := writeStream(t, dir, "a.json", map[string]float64{"BenchmarkFoo": 150.5})
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-list", path}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	out := stdout.String()
	for _, want := range []string{"BenchmarkFoo", "150.5 ns/op", "24 B/op", "1 allocs/op"} {
		if !strings.Contains(out, want) {
			t.Errorf("-list output missing %q:\n%s", want, out)
		}
	}
}

func TestFlagErrors(t *testing.T) {
	dir := t.TempDir()
	path := writeStream(t, dir, "a.json", map[string]float64{"BenchmarkFoo": 1})
	for name, args := range map[string][]string{
		"no args":        {},
		"one arg":        {path},
		"three args":     {path, path, path},
		"bad threshold":  {"-threshold", "0", path, path},
		"bad alloc thr":  {"-alloc-threshold", "-1", path, path},
		"list two args":  {"-list", path, path},
		"missing file":   {path, filepath.Join(dir, "nope.json")},
		"unknown flag":   {"-frobnicate", path, path},
		"not json input": {"-list", mustWrite(t, dir, "bad.txt", "BenchmarkFoo 100 ns/op")},
	} {
		t.Run(name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if err := run(args, &stdout, &stderr); err == nil {
				t.Fatalf("run(%v) unexpectedly succeeded", args)
			}
		})
	}
}

func mustWrite(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestCountKeepsMinimum: repeated measurements (bench -count > 1) keep the
// fastest run, the noise-resistant convention.
func TestCountKeepsMinimum(t *testing.T) {
	s := stream(map[string]float64{"BenchmarkFoo": 100}) +
		stream(map[string]float64{"BenchmarkFoo": 80})
	benches, err := Parse(strings.NewReader(s))
	if err != nil {
		t.Fatal(err)
	}
	if len(benches) != 1 || benches[0].NsOp != 80 {
		t.Fatalf("parsed %+v, want single BenchmarkFoo at 80 ns/op", benches)
	}
}

// TestSummaryMode: -summary must emit valid JSON keyed by benchmark name
// with ns/op and allocs/op, the condensed artifact `make bench` stores next
// to the raw stream.
func TestSummaryMode(t *testing.T) {
	dir := t.TempDir()
	path := writeStream(t, dir, "run.json", map[string]float64{
		"BenchmarkFoo": 100, "BenchmarkBar": 250.5,
	})
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-summary", path}, &stdout, &stderr); err != nil {
		t.Fatalf("-summary failed: %v\n%s", err, stderr.String())
	}
	var doc map[string]struct {
		NsOp     float64  `json:"ns_op"`
		AllocsOp *float64 `json:"allocs_op"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &doc); err != nil {
		t.Fatalf("-summary output is not JSON: %v\n%s", err, stdout.String())
	}
	if len(doc) != 2 {
		t.Fatalf("summary has %d entries, want 2:\n%s", len(doc), stdout.String())
	}
	foo := doc["BenchmarkFoo"]
	if foo.NsOp != 100 {
		t.Errorf("BenchmarkFoo ns_op = %v, want 100", foo.NsOp)
	}
	if foo.AllocsOp == nil || *foo.AllocsOp != 1 {
		t.Errorf("BenchmarkFoo allocs_op = %v, want 1", foo.AllocsOp)
	}
}

func TestSummaryModeArgErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-summary", "a.json", "b.json"}, &stdout, &stderr); err == nil {
		t.Fatal("-summary with two artifacts did not fail")
	}
}

// TestTrajectoryMode assembles two synthetic revision artifacts and checks
// the perf-over-time table carries both revisions' measurements.
func TestTrajectoryMode(t *testing.T) {
	dir := t.TempDir()
	old := writeStream(t, dir, "BENCH_aaa1111.json", map[string]float64{"BenchmarkFoo": 100})
	new_ := writeStream(t, dir, "BENCH_bbb2222.json", map[string]float64{"BenchmarkFoo": 80, "BenchmarkBar": 50})
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-trajectory", old, new_}, &stdout, &stderr); err != nil {
		t.Fatalf("-trajectory failed: %v\n%s", err, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{
		"| benchmark | rev | ns/op | allocs/op |",
		"| BenchmarkFoo | aaa1111 | 100.0 | 1 |",
		"| BenchmarkFoo | bbb2222 | 80.0 | 1 |",
		"| BenchmarkBar | aaa1111 | - | - |", // unmeasured revision renders as a gap
		"ns/op trajectory across 2 revision(s)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("trajectory output missing %q:\n%s", want, out)
		}
	}
}

// TestTrajectoryModeOutDir writes the report files instead of printing.
func TestTrajectoryModeOutDir(t *testing.T) {
	dir := t.TempDir()
	art := writeStream(t, dir, "BENCH_aaa1111.json", map[string]float64{"BenchmarkFoo": 100})
	outDir := filepath.Join(dir, "report")
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-trajectory", "-out", outDir, art}, &stdout, &stderr); err != nil {
		t.Fatalf("-trajectory -out failed: %v\n%s", err, stderr.String())
	}
	for _, name := range []string{"trajectory.md", "trajectory.txt"} {
		b, err := os.ReadFile(filepath.Join(outDir, name))
		if err != nil {
			t.Fatalf("missing %s: %v", name, err)
		}
		if len(b) == 0 {
			t.Errorf("%s is empty", name)
		}
	}
}

func TestTrajectoryModeErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-trajectory"}, &stdout, &stderr); err == nil {
		t.Error("-trajectory without artifacts did not fail")
	}
	if err := run([]string{"-trajectory", "not-a-bench.json"}, &stdout, &stderr); err == nil {
		t.Error("-trajectory with a foreign filename did not fail")
	}
}
