// Command benchdiff compares two benchmark artifacts produced by `make
// bench` (`go test -json` streams, the BENCH_<rev>.json files) and fails
// when any benchmark of the new run regressed beyond the threshold in
// ns/op or in allocs/op. It is the CI bench-gate: the committed baseline is
// the contract, and a PR that slows a hot path down >25% — or grows its
// allocation count >25%, the leading indicator of pooling regressions —
// fails the gate.
//
// Usage:
//
//	benchdiff old.json new.json              # gate at the default 1.25×
//	benchdiff -threshold 1.5 old.json new.json
//	benchdiff -alloc-threshold 2 old.json new.json
//	benchdiff -list file.json                # pretty-print one artifact
//	benchdiff -summary file.json             # condensed JSON: name → ns/op, allocs/op
//	benchdiff -trajectory BENCH_*.json       # perf-over-time table across revisions
//	benchdiff -trajectory -out dir BENCH_*.json BENCH_*.summary.json
//
// -trajectory assembles every given BENCH_<rev>.json / .summary.json
// artifact into a perf-over-time report: a markdown table (benchmark × rev,
// ns/op and allocs/op) and an ASCII chart of each benchmark's ns/op
// normalized to its first measurement. Revisions are ordered by git
// first-parent history when run inside the repository (argument order
// otherwise); a raw stream wins over a summary of the same revision.
// Benchmarks present in only one artifact are reported (per row and in a
// summary count) but never fail the gate — new benchmarks must be able to
// land together with their baseline refresh, and removals land with one
// too. Benchmarks whose ns/op is unmeasurable on either side (zero,
// negative, NaN) fail the gate: the comparison is meaningless and must not
// silently pass. The alloc gate only engages when both artifacts carry an
// allocs/op measurement — a legacy baseline captured without -benchmem
// skips it (with a notice) rather than failing.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"mcnet/internal/benchfmt"
	"mcnet/internal/plot"
)

// Bench is one benchmark's parsed measurements (see internal/benchfmt;
// BytesOp and AllocsOp are -1 when absent).
type Bench = benchfmt.Bench

// Parse extracts benchmark results from a `go test -json` stream.
func Parse(r io.Reader) ([]Bench, error) { return benchfmt.Parse(r) }

// errBadFlags mirrors the mcsweep convention: flag errors are already
// printed by the FlagSet.
var errBadFlags = errors.New("invalid arguments")

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if !errors.Is(err, errBadFlags) {
			fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		}
		os.Exit(1)
	}
}

// run is the whole command behind main, factored out for tests.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		threshold      = fs.Float64("threshold", 1.25, "fail when new ns/op exceeds threshold × old ns/op")
		allocThreshold = fs.Float64("alloc-threshold", 1.25, "fail when new allocs/op exceeds alloc-threshold × old allocs/op (skipped when either artifact lacks allocs/op)")
		list           = fs.Bool("list", false, "print one artifact's benchmarks and exit")
		summary        = fs.Bool("summary", false, "print one artifact as condensed JSON (name → ns/op, allocs/op) and exit")
		trajectory     = fs.Bool("trajectory", false, "assemble BENCH_<rev> artifacts into a perf-over-time table and chart")
		out            = fs.String("out", "", "with -trajectory: directory to write trajectory.md and trajectory.txt into (default: stdout)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return errBadFlags
	}
	if *trajectory {
		if fs.NArg() == 0 {
			return errors.New("-trajectory needs at least one BENCH_<rev> artifact")
		}
		return runTrajectory(stdout, fs.Args(), *out)
	}
	if *list || *summary {
		if fs.NArg() != 1 {
			return fmt.Errorf("-list/-summary need exactly one artifact, got %d", fs.NArg())
		}
		benches, err := parseFile(fs.Arg(0))
		if err != nil {
			return err
		}
		if *summary {
			return printSummary(stdout, benches)
		}
		printBenches(stdout, benches)
		return nil
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("need exactly two artifacts (old new), got %d", fs.NArg())
	}
	if *threshold <= 0 {
		return fmt.Errorf("threshold %v must be positive", *threshold)
	}
	if *allocThreshold <= 0 {
		return fmt.Errorf("alloc-threshold %v must be positive", *allocThreshold)
	}
	old, err := parseFile(fs.Arg(0))
	if err != nil {
		return fmt.Errorf("%s: %v", fs.Arg(0), err)
	}
	new_, err := parseFile(fs.Arg(1))
	if err != nil {
		return fmt.Errorf("%s: %v", fs.Arg(1), err)
	}
	return diff(stdout, old, new_, *threshold, *allocThreshold)
}

// diff reports every benchmark comparison and returns an error naming the
// regressions, if any. Benchmarks present on only one side are reported per
// row and counted in the summary line but never fail the gate (new
// benchmarks must be able to land together with their baseline refresh, and
// a removal lands with one too). A benchmark whose ns/op is unmeasurable on
// either side (zero, negative or NaN — a corrupt artifact) fails the gate:
// its ratio would be Inf or NaN, and NaN compares false against any
// threshold, which would silently pass a broken measurement.
//
// Alongside ns/op, allocs/op is gated at allocThreshold when both sides
// measured it. Allocation counts are deterministic counters, so the gate is
// strict: a zero-alloc baseline that grows any allocations is a regression
// (no ratio needed), which is exactly the property the pooled hot paths pin.
// Benchmarks without allocs/op on either side — a baseline captured before
// -benchmem, or one side stripped — skip the alloc comparison and are
// counted in a notice line, never failed.
func diff(w io.Writer, old, new_ []Bench, threshold, allocThreshold float64) error {
	oldBy := make(map[string]Bench, len(old))
	for _, b := range old {
		oldBy[b.Name] = b
	}
	seen := make(map[string]bool, len(new_))
	var regressions, unmeasurable []string
	added, removed, allocSkipped := 0, 0, 0
	fmt.Fprintf(w, "%-28s %14s %14s %8s\n", "benchmark", "old ns/op", "new ns/op", "ratio")
	for _, nb := range new_ {
		seen[nb.Name] = true
		ob, ok := oldBy[nb.Name]
		if !(nb.NsOp > 0) || (ok && !(ob.NsOp > 0)) {
			oldCol := "-"
			detail := fmt.Sprintf("%s: new with %v ns/op", nb.Name, nb.NsOp)
			if ok {
				oldCol = fmt.Sprintf("%.1f", ob.NsOp)
				detail = fmt.Sprintf("%s: %v → %v ns/op", nb.Name, ob.NsOp, nb.NsOp)
			}
			fmt.Fprintf(w, "%-28s %14s %14.1f %8s  UNMEASURABLE\n", nb.Name, oldCol, nb.NsOp, "-")
			unmeasurable = append(unmeasurable, detail)
			continue
		}
		if !ok {
			added++
			fmt.Fprintf(w, "%-28s %14s %14.1f %8s  (new, no baseline)\n", nb.Name, "-", nb.NsOp, "-")
			continue
		}
		ratio := nb.NsOp / ob.NsOp
		mark := ""
		if ratio > threshold {
			mark = "  REGRESSION"
			regressions = append(regressions,
				fmt.Sprintf("%s: %.1f → %.1f ns/op (%.2f× > %.2f×)", nb.Name, ob.NsOp, nb.NsOp, ratio, threshold))
		}
		switch {
		case ob.AllocsOp < 0 || nb.AllocsOp < 0:
			allocSkipped++
		case ob.AllocsOp == 0 && nb.AllocsOp > 0:
			mark += "  ALLOC-REGRESSION"
			regressions = append(regressions,
				fmt.Sprintf("%s: 0 → %.0f allocs/op (zero-alloc baseline broken)", nb.Name, nb.AllocsOp))
		case ob.AllocsOp > 0 && nb.AllocsOp/ob.AllocsOp > allocThreshold:
			mark += "  ALLOC-REGRESSION"
			regressions = append(regressions,
				fmt.Sprintf("%s: %.0f → %.0f allocs/op (%.2f× > %.2f×)",
					nb.Name, ob.AllocsOp, nb.AllocsOp, nb.AllocsOp/ob.AllocsOp, allocThreshold))
		}
		fmt.Fprintf(w, "%-28s %14.1f %14.1f %7.2fx%s\n", nb.Name, ob.NsOp, nb.NsOp, ratio, mark)
	}
	for _, ob := range old {
		if !seen[ob.Name] {
			removed++
			fmt.Fprintf(w, "%-28s %14.1f %14s %8s  (removed)\n", ob.Name, ob.NsOp, "-", "-")
		}
	}
	if added > 0 || removed > 0 {
		fmt.Fprintf(w, "%d new benchmark(s) without baseline, %d removed from the new run (neither fails the gate)\n",
			added, removed)
	}
	if allocSkipped > 0 {
		fmt.Fprintf(w, "%d benchmark(s) without allocs/op on both sides; alloc gate skipped for them\n", allocSkipped)
	}
	if len(unmeasurable) > 0 {
		return fmt.Errorf("%d benchmark(s) with unmeasurable ns/op (corrupt artifact?):\n  %s",
			len(unmeasurable), strings.Join(unmeasurable, "\n  "))
	}
	if len(regressions) > 0 {
		return fmt.Errorf("%d benchmark(s) regressed beyond %.2f×:\n  %s",
			len(regressions), threshold, strings.Join(regressions, "\n  "))
	}
	fmt.Fprintf(w, "no regressions beyond %.2f×\n", threshold)
	return nil
}

// summaryRow is one benchmark in the -summary JSON document. AllocsOp is a
// pointer so a stream captured without -benchmem omits the key instead of
// reporting a fake zero.
type summaryRow struct {
	NsOp     float64  `json:"ns_op"`
	AllocsOp *float64 `json:"allocs_op,omitempty"`
}

// printSummary emits the condensed machine-readable artifact `make bench`
// stores next to the raw stream: benchmark name → ns/op and allocs/op,
// sorted by name so repeated runs diff cleanly.
func printSummary(w io.Writer, benches []Bench) error {
	doc := make(map[string]summaryRow, len(benches))
	for _, b := range benches {
		row := summaryRow{NsOp: b.NsOp}
		if b.AllocsOp >= 0 {
			allocs := b.AllocsOp
			row.AllocsOp = &allocs
		}
		doc[b.Name] = row
	}
	b, err := json.MarshalIndent(doc, "", "  ") // map keys marshal sorted
	if err != nil {
		return err
	}
	_, err = fmt.Fprintln(w, string(b))
	return err
}

func printBenches(w io.Writer, benches []Bench) {
	for _, b := range benches {
		line := fmt.Sprintf("%-28s %14.1f ns/op", b.Name, b.NsOp)
		if b.BytesOp >= 0 {
			line += fmt.Sprintf(" %12.0f B/op", b.BytesOp)
		}
		if b.AllocsOp >= 0 {
			line += fmt.Sprintf(" %8.0f allocs/op", b.AllocsOp)
		}
		fmt.Fprintln(w, line)
	}
}

func parseFile(path string) ([]Bench, error) {
	return benchfmt.ParseFile(path)
}

// runTrajectory assembles the given BENCH_<rev> artifacts into the
// perf-over-time report: a markdown table and a normalized ns/op chart.
// Revisions are ordered by git first-parent history when available,
// argument order otherwise. With outDir empty the report goes to stdout;
// otherwise trajectory.md and trajectory.txt are written there.
func runTrajectory(stdout io.Writer, paths []string, outDir string) error {
	arts, err := benchfmt.LoadArtifacts(paths)
	if err != nil {
		return err
	}
	if order, err := benchfmt.GitRevOrder("."); err == nil {
		benchfmt.SortByRevOrder(arts, order)
	}
	md, chart := renderTrajectory(arts)
	if outDir == "" {
		fmt.Fprint(stdout, md)
		fmt.Fprint(stdout, chart)
		return nil
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	for _, f := range []struct{ name, content string }{
		{"trajectory.md", md},
		{"trajectory.txt", chart},
	} {
		path := filepath.Join(outDir, f.name)
		if err := os.WriteFile(path, []byte(f.content), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s\n", path)
	}
	return nil
}

// renderTrajectory pivots ordered artifacts into the markdown table and
// ASCII chart forms, shared by stdout and -out modes.
func renderTrajectory(arts []benchfmt.Artifact) (md, chart string) {
	revs, names, nsOp, allocsOp := benchfmt.Trajectory(arts)
	series := make([]plot.TrajectorySeries, len(names))
	for i, n := range names {
		series[i] = plot.TrajectorySeries{Name: n, NsOp: nsOp[n], AllocsOp: allocsOp[n]}
	}
	return plot.TrajectoryMarkdown(revs, series), plot.TrajectoryChart(revs, series, 72, 16)
}
