// Command mcrepro runs the paper-grade reproduction pipeline: every study
// of the experiment manifest through the sweep engine into a timestamped
// paper_runs/<stamp>/ tree, with schema-validated CSVs, model-vs-simulation
// agreement tables (Markdown + LaTeX), rendered charts, a perf-trajectory
// section over committed BENCH artifacts, and a machine-readable
// report.json whose verdict gates CI.
//
// Usage:
//
//	mcrepro -small               # the CI subset: quick scale, 5-pt grids, <2 min
//	mcrepro                      # the full paper grid at paper scale
//	mcrepro -only fig3-m32       # one study
//	mcrepro -resume paper_runs/2026-08-08_120000   # finish a torn run
//	mcrepro -list                # show the manifest
//
// Exit status is 0 only when the pipeline completed AND the fidelity
// verdict is "pass".
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"mcnet/internal/experiments"
	"mcnet/internal/repro"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mcrepro", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		small     = fs.Bool("small", false, "run the CI-sized subset (quick scale, 5-point grids)")
		out       = fs.String("out", "paper_runs", "parent directory for run trees")
		stamp     = fs.String("stamp", "", "run directory name (default: UTC timestamp); reuse to resume a cache")
		resume    = fs.String("resume", "", "existing run directory to resume from its manifest")
		threshold = fs.Float64("threshold", 0, "agreement tolerance override, e.g. 0.25 (0 = per-study default)")
		points    = fs.Int("points", 0, "operating points per curve (0 = per-study default)")
		scale     = fs.String("scale", "", "simulation scale: paper|quick (default: paper, or quick with -small)")
		seed      = fs.Uint64("seed", 0, "base RNG seed override (0 = scale default)")
		reps      = fs.Int("reps", 0, "simulation replications per point (0 = scale default)")
		workers   = fs.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
		only      = fs.String("only", "", "comma-separated study names (default: whole manifest)")
		bench     = fs.String("bench", "BENCH_*.json", "glob of benchmark artifacts for the perf-trajectory section")
		list      = fs.Bool("list", false, "print the experiment manifest and exit")
	)
	if err := fs.Parse(argv); err != nil {
		return 2
	}

	if *list {
		printManifest(stdout)
		return 0
	}

	if *resume != "" {
		rep, dir, err := repro.Resume(*resume, stderr)
		return finish(stdout, stderr, rep, dir, err)
	}

	cfg := repro.Config{
		Root: *out, Stamp: *stamp, Small: *small, Scale: *scale,
		Points: *points, Threshold: *threshold, Seed: *seed, Reps: *reps,
		Workers: *workers, Log: stderr,
	}
	if *only != "" {
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			e, ok := experiments.Lookup(name)
			if !ok {
				fmt.Fprintf(stderr, "mcrepro: unknown study %q (see -list)\n", name)
				return 2
			}
			cfg.Only = append(cfg.Only, e.Name)
		}
	}
	cfg.BenchArtifacts = benchArtifacts(*bench)

	rep, dir, err := repro.Run(cfg)
	return finish(stdout, stderr, rep, dir, err)
}

// benchArtifacts expands the BENCH glob, folding in .summary.json
// companions, sorted for determinism.
func benchArtifacts(glob string) []string {
	if glob == "" {
		return nil
	}
	seen := map[string]bool{}
	var paths []string
	for _, g := range []string{glob, strings.TrimSuffix(glob, ".json") + ".summary.json"} {
		matches, err := filepath.Glob(g)
		if err != nil {
			continue
		}
		for _, m := range matches {
			if !seen[m] {
				seen[m] = true
				paths = append(paths, m)
			}
		}
	}
	sort.Strings(paths)
	return paths
}

// finish prints the run summary and maps the outcome to an exit status.
func finish(stdout, stderr io.Writer, rep *repro.Report, dir string, err error) int {
	if err != nil {
		fmt.Fprintf(stderr, "mcrepro: %v\n", err)
		return 1
	}
	for _, s := range rep.Studies {
		status := "pass"
		if !s.Pass {
			status = "FAIL"
		}
		fmt.Fprintf(stdout, "%-18s %-7s %s  (%.1fs)\n", s.Name, string(s.Kind), status, s.Seconds)
	}
	fmt.Fprintf(stdout, "\nrun tree: %s\nreport:   %s\nverdict:  %s\n",
		dir, filepath.Join(dir, "analysis", "report.json"), rep.Verdict)
	if !rep.Passed() {
		for _, f := range rep.Failures {
			fmt.Fprintf(stdout, "  failure: %s\n", f)
		}
		return 1
	}
	return 0
}

// printManifest renders the experiment manifest as a table.
func printManifest(w io.Writer) {
	fmt.Fprintf(w, "%-18s %-7s %-6s %-6s %-6s %s\n", "NAME", "KIND", "SMALL", "GATED", "PAIRS", "TITLE")
	for _, e := range experiments.Manifest() {
		fmt.Fprintf(w, "%-18s %-7s %-6t %-6t %-6d %s\n",
			e.Name, string(e.Kind), e.Small, e.Gated, len(e.Pairs), e.Title)
	}
}
