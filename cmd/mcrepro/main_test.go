package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestListMode(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-list exited %d:\n%s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"fig3-m32", "link-hetero", "GATED", "table1"} {
		if !strings.Contains(out, want) {
			t.Errorf("-list output missing %q:\n%s", want, out)
		}
	}
}

func TestUnknownStudyExitsUsage(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-only", "no-such-study"}, &stdout, &stderr); code != 2 {
		t.Errorf("unknown -only study exited %d, want 2", code)
	}
}

// TestSmallRunPassesAndThresholdFlips runs one cheap gated study end to
// end: at the default tolerance the exit status is 0 and the tree is
// complete; with an absurdly tight -threshold the same study flips the
// verdict to fail and the exit status to 1.
func TestSmallRunPassesAndThresholdFlips(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	root := t.TempDir()
	var stdout, stderr bytes.Buffer
	code := run([]string{"-small", "-out", root, "-stamp", "pass", "-only", "rate-hetero", "-bench", ""},
		&stdout, &stderr)
	if code != 0 {
		t.Fatalf("passing run exited %d:\n%s\n%s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "verdict:  pass") {
		t.Errorf("summary missing pass verdict:\n%s", stdout.String())
	}
	for _, rel := range []string{"manifest.json", "STATUS", "csv/rate-hetero.csv", "analysis/report.json"} {
		if _, err := os.Stat(filepath.Join(root, "pass", rel)); err != nil {
			t.Errorf("run tree missing %s: %v", rel, err)
		}
	}

	stdout.Reset()
	stderr.Reset()
	// Same study, tolerance far below any real agreement: the gate must
	// flip to a nonzero exit. The simulation cache from the passing run is
	// reused via the same stamp, so this costs no extra simulation time.
	code = run([]string{"-small", "-out", root, "-stamp", "pass", "-only", "rate-hetero",
		"-threshold", "0.000001", "-bench", ""}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("tight-threshold run exited %d, want 1:\n%s", code, stdout.String())
	}
	if !strings.Contains(stdout.String(), "exceeds tolerance") {
		t.Errorf("failure summary missing tolerance message:\n%s", stdout.String())
	}
}

func TestBenchArtifactsGlob(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"BENCH_abc.json", "BENCH_abc.summary.json", "BENCH_def.json", "other.json"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got := benchArtifacts(filepath.Join(dir, "BENCH_*.json"))
	if len(got) != 3 {
		t.Errorf("glob matched %v, want the three BENCH artifacts", got)
	}
	if benchArtifacts("") != nil {
		t.Error("empty glob should disable the trajectory section")
	}
}
