// Command mcexp regenerates the paper's evaluation artifacts: Table 1, the
// four panels of Figures 3 and 4, the interpretation and routing ablations,
// and the traffic-pattern, rate-, workload- and link-heterogeneity
// extensions. The set of runnable experiments is the experiment manifest
// (internal/experiments.Manifest) — the same enumeration cmd/mcrepro and
// the CI fidelity gate consume, so the CLIs can never drift.
//
// Usage:
//
//	mcexp -list                      # show every experiment
//	mcexp -exp figs                  # Table 1 + all four figure panels
//	mcexp -exp fig3m32 -scale quick  # one panel, ~10× cheaper simulation
//	mcexp -exp all -out results/     # everything + CSV files
//
// Each figure prints as an ASCII panel (analysis and simulation curves for
// Lm=256 and Lm=512) plus a steady-state accuracy summary; CSVs land in the
// -out directory for external plotting.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"mcnet/internal/experiments"
	"mcnet/internal/plot"
	"mcnet/internal/sweep"
)

func main() {
	var (
		exp     = flag.String("exp", "figs", "experiment name from the manifest (see -list), or a group: figs|all")
		scale   = flag.String("scale", "paper", "simulation scale: paper|quick")
		out     = flag.String("out", "", "directory for CSV output (optional)")
		points  = flag.Int("points", 0, "operating points per curve (0 = per-experiment default)")
		reps    = flag.Int("reps", 1, "simulation replications per point")
		seed    = flag.Uint64("seed", 1, "base RNG seed")
		workers = flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
		cache   = flag.String("cache", "", "directory for cross-run simulation caching (optional)")
		width   = flag.Int("width", 72, "chart width")
		height  = flag.Int("height", 18, "chart height")
		list    = flag.Bool("list", false, "print the experiment manifest and exit")
	)
	flag.Parse()

	if *list {
		fmt.Printf("%-18s %-7s %s\n", "NAME", "KIND", "TITLE")
		for _, e := range experiments.Manifest() {
			fmt.Printf("%-18s %-7s %s\n", e.Name, string(e.Kind), e.Title)
		}
		fmt.Println("\ngroups: figs (Table 1 + the four figure panels), all (everything but the validation sweep)")
		return
	}

	var sc experiments.Scale
	switch *scale {
	case "paper":
		sc = experiments.PaperScale()
	case "quick":
		sc = experiments.QuickScale()
	default:
		fatalf("unknown -scale %q", *scale)
	}
	sc.Seed = *seed
	sc.Reps = *reps
	runner := experiments.NewRunner(sc)
	runner.Workers = *workers
	if *cache != "" {
		c, err := sweep.NewDirCache(*cache)
		if err != nil {
			fatalf("opening -cache: %v", err)
		}
		runner.Cache = c
	}

	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fatalf("creating -out: %v", err)
		}
	}

	for _, e := range selectEntries(*exp) {
		pts := e.Points(*points)
		start := time.Now()
		switch {
		case e.Figure != nil:
			fig, err := e.Figure(runner, pts)
			if err != nil {
				fatalf("%s: %v", e.Name, err)
			}
			fmt.Println(fig.Render(*width, *height))
			fmt.Printf("steady-state mean |analysis−simulation|/simulation = %.1f%%   (%s, %v)\n\n",
				100*fig.SteadyStateError(), *scale, time.Since(start).Round(time.Second))
			writeCSV(*out, e.Name, fig.Series())
		case e.Report != nil:
			text, err := e.Report(runner, pts)
			if err != nil {
				fatalf("%s: %v", e.Name, err)
			}
			fmt.Println(text)
		case e.Series != nil:
			series, err := e.Series(runner, pts)
			if err != nil {
				fatalf("%s: %v", e.Name, err)
			}
			fmt.Println(plot.ASCII(e.Title, series, *width, *height, plot.AutoCap(series)))
			fmt.Printf("(%s, %v)\n\n", *scale, time.Since(start).Round(time.Second))
			writeCSV(*out, e.Name, series)
		}
	}
}

// selectEntries expands an -exp value into manifest entries: a group name
// or a single experiment (dash-insensitive, so the older fig3m32 spelling
// still works).
func selectEntries(exp string) []experiments.Entry {
	switch exp {
	case "all":
		// Everything except the validation sweep, which is a slow
		// paper-scale diagnostic requested explicitly.
		var out []experiments.Entry
		for _, e := range experiments.Manifest() {
			if e.Name != "validate" {
				out = append(out, e)
			}
		}
		return out
	case "figs":
		var out []experiments.Entry
		for _, name := range []string{"table1", "fig3-m32", "fig3-m64", "fig4-m32", "fig4-m64"} {
			e, ok := experiments.Lookup(name)
			if !ok {
				fatalf("manifest is missing %q", name)
			}
			out = append(out, e)
		}
		return out
	default:
		e, ok := experiments.Lookup(exp)
		if !ok {
			fatalf("unknown -exp %q; valid: figs, all, %s", exp, strings.Join(experiments.ManifestNames(), ", "))
		}
		return []experiments.Entry{e}
	}
}

func writeCSV(dir, name string, series []plot.Series) {
	if dir == "" {
		return
	}
	path := filepath.Join(dir, name+".csv")
	f, err := os.Create(path)
	if err != nil {
		fatalf("writing %s: %v", path, err)
	}
	defer f.Close()
	if err := plot.CSV(f, series); err != nil {
		fatalf("writing %s: %v", path, err)
	}
	fmt.Printf("wrote %s\n", path)
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "mcexp: "+format+"\n", args...)
	os.Exit(1)
}
