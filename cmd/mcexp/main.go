// Command mcexp regenerates the paper's evaluation artifacts: Table 1, the
// four panels of Figures 3 and 4, the interpretation and routing ablations,
// and the traffic-pattern and rate-heterogeneity extensions.
//
// Usage:
//
//	mcexp -exp figs                  # all four figure panels, paper scale
//	mcexp -exp fig3m32 -scale quick  # one panel, ~10× cheaper simulation
//	mcexp -exp all -out results/     # everything + CSV files
//
// Each figure prints as an ASCII panel (analysis and simulation curves for
// Lm=256 and Lm=512) plus a steady-state accuracy summary; CSVs land in the
// -out directory for external plotting.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"mcnet/internal/experiments"
	"mcnet/internal/plot"
	"mcnet/internal/sweep"
	"mcnet/internal/system"
	"mcnet/internal/units"
	"mcnet/internal/validate"
)

func main() {
	var (
		exp     = flag.String("exp", "figs", "experiment: table1|saturation|validate|fig3m32|fig3m64|fig4m32|fig4m64|figs|ablation-icn2|ablation-routing|baseline|traffic-patterns|rate-hetero|workload|link-hetero|all")
		scale   = flag.String("scale", "paper", "simulation scale: paper|quick")
		out     = flag.String("out", "", "directory for CSV output (optional)")
		points  = flag.Int("points", 10, "operating points per curve")
		reps    = flag.Int("reps", 1, "simulation replications per point")
		seed    = flag.Uint64("seed", 1, "base RNG seed")
		workers = flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
		cache   = flag.String("cache", "", "directory for cross-run simulation caching (optional)")
		width   = flag.Int("width", 72, "chart width")
		height  = flag.Int("height", 18, "chart height")
	)
	flag.Parse()

	var sc experiments.Scale
	switch *scale {
	case "paper":
		sc = experiments.PaperScale()
	case "quick":
		sc = experiments.QuickScale()
	default:
		fatalf("unknown -scale %q", *scale)
	}
	sc.Seed = *seed
	sc.Reps = *reps
	runner := experiments.NewRunner(sc)
	runner.Workers = *workers
	if *cache != "" {
		c, err := sweep.NewDirCache(*cache)
		if err != nil {
			fatalf("opening -cache: %v", err)
		}
		runner.Cache = c
	}

	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fatalf("creating -out: %v", err)
		}
	}

	run := map[string]bool{}
	switch *exp {
	case "all":
		for _, e := range []string{"table1", "saturation", "fig3m32", "fig3m64", "fig4m32", "fig4m64",
			"ablation-icn2", "ablation-routing", "baseline", "traffic-patterns", "rate-hetero", "workload", "link-hetero"} {
			run[e] = true
		}
	case "figs":
		for _, e := range []string{"table1", "fig3m32", "fig3m64", "fig4m32", "fig4m64"} {
			run[e] = true
		}
	default:
		run[*exp] = true
	}

	did := 0
	figure := func(name string, f func() (experiments.Figure, error)) {
		if !run[name] {
			return
		}
		did++
		start := time.Now()
		fig, err := f()
		if err != nil {
			fatalf("%s: %v", name, err)
		}
		fmt.Println(fig.Render(*width, *height))
		fmt.Printf("steady-state mean |analysis−simulation|/simulation = %.1f%%   (%s, %v)\n\n",
			100*fig.SteadyStateError(), *scale, time.Since(start).Round(time.Second))
		writeCSV(*out, fig.Name, fig.Series())
	}
	study := func(name, title string, f func() ([]plot.Series, error)) {
		if !run[name] {
			return
		}
		did++
		start := time.Now()
		series, err := f()
		if err != nil {
			fatalf("%s: %v", name, err)
		}
		fmt.Println(plot.ASCII(title, series, *width, *height, plot.AutoCap(series)))
		fmt.Printf("(%s, %v)\n\n", *scale, time.Since(start).Round(time.Second))
		writeCSV(*out, name, series)
	}

	if run["table1"] {
		did++
		fmt.Println(experiments.Table1())
	}
	if run["saturation"] {
		did++
		rows, err := experiments.SaturationSummary()
		if err != nil {
			fatalf("saturation: %v", err)
		}
		fmt.Println("Saturation summary: model λ_sat vs the paper's plotted x-ranges")
		fmt.Println(experiments.FormatSaturationSummary(rows))
	}
	if run["validate"] {
		did++
		for _, name := range []string{"org1", "org2"} {
			org, err := system.ParseOrganization(name)
			if err != nil {
				fatalf("validate: %v", err)
			}
			rep, err := validate.Sweep(validate.Config{
				Org: org, Par: units.Default(),
				Warmup: sc.Warmup, Measure: sc.Measure, Drain: sc.Drain, Seed: sc.Seed,
			}, *points, 1.0)
			if err != nil {
				fatalf("validate %s: %v", name, err)
			}
			fmt.Printf("Validation sweep — %s (M=32, Lm=256)\n%s\n", org.Name, rep)
		}
	}
	figure("fig3m32", runner.Figure3M32)
	figure("fig3m64", runner.Figure3M64)
	figure("fig4m32", runner.Figure4M32)
	figure("fig4m64", runner.Figure4M64)
	study("ablation-icn2", "Ablation A: model interpretation vs simulation (Org1, M=32, Lm=256)",
		func() ([]plot.Series, error) {
			return runner.InterpretationAblation(system.Table1Org1(), units.Default(), *points)
		})
	study("ablation-routing", "Ablation B: balanced vs random-up routing (Org2, M=32, Lm=256)",
		func() ([]plot.Series, error) {
			return runner.RoutingAblation(system.Table1Org2(), units.Default(), *points)
		})
	study("baseline", "Baseline: wormhole-aware model vs store-and-forward M/M/1 (Org2, M=32, Lm=256)",
		func() ([]plot.Series, error) {
			return runner.BaselineComparison(system.Table1Org2(), units.Default(), *points)
		})
	study("traffic-patterns", "Extension 1: traffic patterns (Org2, M=32, Lm=256)",
		func() ([]plot.Series, error) {
			return runner.TrafficPatternStudy(system.Table1Org2(), units.Default(), *points)
		})
	study("rate-hetero", "Extension 2: per-cluster injection-rate heterogeneity",
		func() ([]plot.Series, error) { return runner.RateHeterogeneityStudy(*points) })
	study("workload", "Extension 3: bursty arrivals × message-size mixes (Org2, M=32, Lm=256)",
		func() ([]plot.Series, error) {
			return runner.WorkloadStudy(system.Table1Org2(), units.Default(), *points)
		})
	study("link-hetero", "Extension 4: per-tier link technology (Org2, M=32, Lm=256)",
		func() ([]plot.Series, error) {
			return runner.LinkHeterogeneityStudy(system.Table1Org2(), units.Default(), *points)
		})

	if did == 0 {
		fatalf("unknown -exp %q", *exp)
	}
}

func writeCSV(dir, name string, series []plot.Series) {
	if dir == "" {
		return
	}
	path := filepath.Join(dir, name+".csv")
	f, err := os.Create(path)
	if err != nil {
		fatalf("writing %s: %v", path, err)
	}
	defer f.Close()
	if err := plot.CSV(f, series); err != nil {
		fatalf("writing %s: %v", path, err)
	}
	fmt.Printf("wrote %s\n", path)
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "mcexp: "+format+"\n", args...)
	os.Exit(1)
}
