// Benchmarks regenerating every table and figure of the paper's evaluation
// (§4), plus the ablations and extension studies from DESIGN.md. Each
// figure benchmark runs the full analysis+simulation sweep at a reduced
// simulation scale and reports the steady-state model error as a metric;
// the full paper-scale regeneration is `mcexp -exp all` (see EXPERIMENTS.md
// for recorded results).
package mcnet

import (
	"testing"

	"mcnet/internal/analytic"
	"mcnet/internal/experiments"
	"mcnet/internal/mcsim"
	"mcnet/internal/system"
	"mcnet/internal/units"
)

// benchScale keeps one figure sweep around a second.
func benchScale() experiments.Scale {
	return experiments.Scale{Warmup: 500, Measure: 5000, Drain: 500, Seed: 1, Reps: 1}
}

// BenchmarkTable1 regenerates the paper's Table 1 (system organizations).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if out := experiments.Table1(); len(out) == 0 {
			b.Fatal("empty Table 1")
		}
	}
}

// benchFigure runs one latency panel per iteration and reports the
// steady-state accuracy of the model against the simulator.
func benchFigure(b *testing.B, f func(experiments.Runner) (experiments.Figure, error)) {
	b.Helper()
	r := experiments.NewRunner(benchScale())
	var fig experiments.Figure
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = f(r)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*fig.SteadyStateError(), "steady%err")
	b.ReportMetric(fig.XMax, "λ_sat")
}

// BenchmarkFig3_M32 regenerates Fig. 3 (left): Org1, M=32, Lm ∈ {256,512}.
func BenchmarkFig3_M32(b *testing.B) { benchFigure(b, experiments.Runner.Figure3M32) }

// BenchmarkFig3_M64 regenerates Fig. 3 (right): Org1, M=64.
func BenchmarkFig3_M64(b *testing.B) { benchFigure(b, experiments.Runner.Figure3M64) }

// BenchmarkFig4_M32 regenerates Fig. 4 (left): Org2, M=32.
func BenchmarkFig4_M32(b *testing.B) { benchFigure(b, experiments.Runner.Figure4M32) }

// BenchmarkFig4_M64 regenerates Fig. 4 (right): Org2, M=64.
func BenchmarkFig4_M64(b *testing.B) { benchFigure(b, experiments.Runner.Figure4M64) }

// BenchmarkAblationICN2Norm contrasts the calibrated and paper-literal
// model interpretations against the simulator (Ablation A).
func BenchmarkAblationICN2Norm(b *testing.B) {
	r := experiments.NewRunner(benchScale())
	for i := 0; i < b.N; i++ {
		if _, err := r.InterpretationAblation(system.Table1Org1(), units.Default(), 6); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationRouting contrasts balanced and random-up ascent in the
// simulator (Ablation B).
func BenchmarkAblationRouting(b *testing.B) {
	r := experiments.NewRunner(benchScale())
	for i := 0; i < b.N; i++ {
		if _, err := r.RoutingAblation(system.Table1Org2(), units.Default(), 6); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTrafficPatterns runs the non-uniform-traffic extension study.
func BenchmarkTrafficPatterns(b *testing.B) {
	r := experiments.NewRunner(benchScale())
	for i := 0; i < b.N; i++ {
		if _, err := r.TrafficPatternStudy(system.Table1Org2(), units.Default(), 4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRateHeterogeneity runs the injection-rate heterogeneity
// extension study.
func BenchmarkRateHeterogeneity(b *testing.B) {
	r := experiments.NewRunner(benchScale())
	for i := 0; i < b.N; i++ {
		if _, err := r.RateHeterogeneityStudy(4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBaselineComparison contrasts the wormhole-aware model with the
// store-and-forward M/M/1 baseline against the simulator.
func BenchmarkBaselineComparison(b *testing.B) {
	r := experiments.NewRunner(benchScale())
	for i := 0; i < b.N; i++ {
		if _, err := r.BaselineComparison(system.Table1Org2(), units.Default(), 4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSaturationSummary regenerates the λ_sat-vs-paper-x-range table.
func BenchmarkSaturationSummary(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.SaturationSummary()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 4 {
			b.Fatal("unexpected summary size")
		}
	}
}

// BenchmarkModelEvaluate measures the cost of one full model evaluation on
// the larger Table 1 organization (all clusters, all destination pairs).
func BenchmarkModelEvaluate(b *testing.B) {
	m, err := analytic.New(system.MustNew(system.Table1Org1()), units.Default(), analytic.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Evaluate(2e-4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorThroughput measures raw simulator speed (events/sec) on
// Org1 at a moderate load.
func BenchmarkSimulatorThroughput(b *testing.B) {
	var events uint64
	for i := 0; i < b.N; i++ {
		res, err := mcsim.Run(mcsim.Config{
			Org: system.Table1Org1(), Par: units.Default(), LambdaG: 2e-4,
			Warmup: 200, Measure: 5000, Drain: 200, Seed: uint64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		events += res.Events
	}
	b.ReportMetric(float64(events)/float64(b.N), "events/op")
}
